// Package durable gives a collector shard crash-safe ingest: every absorbed
// report batch is appended to a length-prefixed, CRC-checked write-ahead log
// before it is acknowledged, and the merged accumulator is periodically
// serialized into checkpoint files, so recovery is load-latest-valid-
// checkpoint + replay-WAL-tail. The report payloads reuse internal/transport's
// hardened frame encoding verbatim; the record header adds what replay needs
// on top of it: the WAL generation (epoch), the report count, the transport's
// idempotency key (so a client retry after a restart still absorbs exactly
// once), and the mechanism digest (so a log written under one strategy matrix
// can never be replayed into another).
//
// # WAL record format
//
// Every record is
//
//	magic   [4]byte  "LDPW"
//	version uint8    (1)
//	crc     uint32   big-endian IEEE CRC-32 of the payload
//	length  uint32   big-endian payload byte count
//	payload [length]byte
//
// and the payload is
//
//	epoch     uint64 big-endian   WAL generation (= the segment's sequence)
//	keyLen    uint8, then keyLen bytes       idempotency key (may be empty)
//	digestLen uint8, then digestLen bytes    mechanism digest (may be empty)
//	count     uint32 big-endian   total reports in the record
//	frames    one or more complete transport report-batch frames
//
// A record is atomic: the CRC covers the whole payload, so a record either
// replays in full or — when the file ends mid-record, the crash case — is
// detected as torn and dropped. Only the end of the final segment may be
// torn, and only when nothing decodable follows the damage (sequential
// appends tear exclusively at the physical end, so an intact record past a
// damaged one proves corruption); every other defect refuses recovery
// rather than guessing.
//
// Decoders are strict in the same way the transport's are: every declared
// length is bounds-checked before allocation, payloads must be consumed
// exactly, and malformed input returns an error — never a panic. The fuzz
// target FuzzDecodeWALRecord enforces this.
package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

const (
	recordMagic   = "LDPW"
	recordVersion = 1

	// recordHeaderLen is magic + version + crc + length.
	recordHeaderLen = 4 + 1 + 4 + 4

	// MaxRecordPayload bounds one WAL record. A record carries one ingested
	// batch (chunked into transport frames), so the cap only limits the size
	// of a single IngestBatch call against a durable collector — split larger
	// batches. It exists so a corrupt length prefix cannot reserve gigabytes
	// during replay.
	MaxRecordPayload = 64 << 20

	// maxRecordMeta bounds the key and digest strings (one byte of length
	// each on the wire).
	maxRecordMeta = 255
)

// Record is one WAL entry: the batch of reports that was absorbed atomically,
// the idempotency key it was ingested under (empty for unkeyed ingest), the
// mechanism digest of the aggregator that absorbed it, and the WAL generation
// it was appended in.
type Record struct {
	Epoch   uint64
	Key     string
	Digest  string
	Reports []protocol.Report
}

// Sentinel errors the decoder distinguishes so recovery can tell "the file
// ends mid-record" (the crash signature — drop the tail) from "the bytes are
// wrong" (corruption — refused everywhere but the tail of the final segment).
var (
	// ErrTornRecord reports a record cut short by the end of its reader: the
	// header or payload is incomplete. This is what a crash mid-append leaves
	// behind.
	ErrTornRecord = errors.New("durable: torn WAL record")
	// errInvalidRecord reports bytes that are present but not a record (bad
	// magic, version, cap, or CRC) — indistinguishable from a torn tail that
	// garbage followed, so the tail policy treats both alike.
	errInvalidRecord = errors.New("durable: invalid WAL record")
	// errCorruptRecord reports a CRC-valid payload that does not parse: the
	// writer wrote it exactly so, which means a bug or targeted tampering —
	// never silently dropped.
	errCorruptRecord = errors.New("durable: corrupt WAL record payload")
)

// EncodeRecord serializes one record (Epoch, Key, Digest, Reports; the wire
// count field is derived from len(Reports)).
func EncodeRecord(rec Record) ([]byte, error) {
	return AppendRecord(nil, rec)
}

// AppendRecord appends rec's encoding to buf and returns the extended slice —
// the allocation-free path Store.Append pools on the hot ingest path. The
// reports are framed with the transport's own encoder: a batch within the
// single-frame limits appends in place; a larger one falls back to the
// chunked encoder (several frames, one allocation). On error buf is returned
// unchanged.
func AppendRecord(buf []byte, rec Record) ([]byte, error) {
	if len(rec.Key) > maxRecordMeta || len(rec.Digest) > maxRecordMeta {
		return buf, fmt.Errorf("durable: record key/digest strings exceed %d bytes", maxRecordMeta)
	}
	// One reservation for the worst case, so the append loops never regrow:
	// per report, flags + three maximal varints + the packed bits.
	worst := recordHeaderLen + 8 + 1 + len(rec.Key) + 1 + len(rec.Digest) + 4 + 14
	for _, r := range rec.Reports {
		worst += 1 + 3*binary.MaxVarintLen64 + (len(r.Bits)+7)/8
	}
	if cap(buf)-len(buf) < worst {
		grown := make([]byte, len(buf), len(buf)+worst)
		copy(grown, buf)
		buf = grown
	}
	start := len(buf)
	out := append(buf, recordMagic...)
	out = append(out, recordVersion)
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0) // crc + payload length, patched below
	payloadStart := len(out)
	out = binary.BigEndian.AppendUint64(out, rec.Epoch)
	out = append(out, byte(len(rec.Key)))
	out = append(out, rec.Key...)
	out = append(out, byte(len(rec.Digest)))
	out = append(out, rec.Digest...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(rec.Reports)))
	framed, err := transport.AppendReportsFrame(out, rec.Reports)
	if err != nil {
		// Over the single-frame limits: chunk into several frames.
		var pb bytes.Buffer
		if cerr := transport.EncodeReportsChunked(&pb, rec.Reports); cerr != nil {
			return buf, fmt.Errorf("durable: encode record reports: %w", cerr)
		}
		framed = append(out, pb.Bytes()...)
	}
	out = framed
	payload := out[payloadStart:]
	if len(payload) > MaxRecordPayload {
		return buf, fmt.Errorf("durable: %d-byte record exceeds the %d-byte WAL record limit; split the batch", len(payload), MaxRecordPayload)
	}
	binary.BigEndian.PutUint32(out[start+5:], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(out[start+9:], uint32(len(payload)))
	return out, nil
}

// DecodeRecord reads one record. A reader exhausted exactly at a record
// boundary returns io.EOF; one exhausted mid-record returns ErrTornRecord.
// Malformed bytes return an error that is never a panic and never an
// attacker-sized allocation.
func DecodeRecord(r io.Reader) (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("%w: truncated header", ErrTornRecord)
		}
		// A real read failure (EIO and friends) is not evidence of a torn
		// record — surface it untranslated so recovery aborts instead of
		// truncating data that may be perfectly intact.
		return Record{}, fmt.Errorf("durable: read WAL record header: %w", err)
	}
	if string(hdr[:4]) != recordMagic {
		return Record{}, fmt.Errorf("%w: bad magic %q", errInvalidRecord, hdr[:4])
	}
	if hdr[4] != recordVersion {
		return Record{}, fmt.Errorf("%w: unsupported version %d", errInvalidRecord, hdr[4])
	}
	wantCRC := binary.BigEndian.Uint32(hdr[5:])
	plen := binary.BigEndian.Uint32(hdr[9:])
	if int64(plen) > MaxRecordPayload {
		return Record{}, fmt.Errorf("%w: %d-byte payload exceeds the %d-byte record limit", errInvalidRecord, plen, MaxRecordPayload)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("%w: truncated payload", ErrTornRecord)
		}
		return Record{}, fmt.Errorf("durable: read WAL record payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return Record{}, fmt.Errorf("%w: CRC mismatch", errInvalidRecord)
	}
	return decodePayload(payload)
}

// decodePayload parses a CRC-validated record payload. Failures here are
// errCorruptRecord: the checksum proves these are the bytes the writer chose.
func decodePayload(payload []byte) (Record, error) {
	var rec Record
	buf := payload
	take := func(n int, what string) ([]byte, error) {
		if len(buf) < n {
			return nil, fmt.Errorf("%w: truncated at its %s", errCorruptRecord, what)
		}
		out := buf[:n]
		buf = buf[n:]
		return out, nil
	}
	b, err := take(8, "epoch")
	if err != nil {
		return Record{}, err
	}
	rec.Epoch = binary.BigEndian.Uint64(b)
	for _, field := range []struct {
		what string
		dst  *string
	}{{"key", &rec.Key}, {"digest", &rec.Digest}} {
		if b, err = take(1, field.what+" length"); err != nil {
			return Record{}, err
		}
		if b, err = take(int(b[0]), field.what); err != nil {
			return Record{}, err
		}
		*field.dst = string(b)
	}
	if b, err = take(4, "report count"); err != nil {
		return Record{}, err
	}
	count := binary.BigEndian.Uint32(b)
	fr := bytes.NewReader(buf)
	var total uint64
	for {
		reports, err := transport.DecodeReports(fr)
		if err == transport.ErrFrameEOF {
			break
		}
		if err != nil {
			return Record{}, fmt.Errorf("%w: %v", errCorruptRecord, err)
		}
		total += uint64(len(reports))
		if total > uint64(count) {
			return Record{}, fmt.Errorf("%w: frames carry more than the declared %d reports", errCorruptRecord, count)
		}
		rec.Reports = append(rec.Reports, reports...)
	}
	if total != uint64(count) {
		return Record{}, fmt.Errorf("%w: declared %d reports, frames carry %d", errCorruptRecord, count, total)
	}
	return rec, nil
}

// walFile is one append-only WAL segment with group commit: concurrent
// appenders stage encoded records into a shared pending buffer; one of them
// becomes the flusher and writes (and, in fsync mode, syncs) everything staged
// so far in a single syscall pair, while later arrivals stage behind it and
// ride the next flush. An Append only returns once its bytes are in the file
// (and synced, in fsync mode) — that write is the acknowledgment the
// collector's absorb waits for.
type walFile struct {
	fsync  bool
	window time.Duration // group-commit gather window (0 = flush immediately)

	// metrics, when armed, observes each flush's syscall time and group size.
	metrics atomic.Pointer[storeMetrics]

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	pend     []byte
	spare    []byte // last flushed buffer, recycled into pend
	appended int64  // logical size: file + pending
	flushed  int64  // bytes durably in the file
	flushing bool
	err      error // sticky: a failed write poisons the segment
}

// openWALFile opens (creating if needed) a segment for appending. The caller
// has already truncated any torn tail, so the file ends at a record boundary.
func openWALFile(path string, fsync bool, window time.Duration) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &walFile{fsync: fsync, window: window, f: f, appended: st.Size(), flushed: st.Size()}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// append stages rec and returns once it is written (group commit: whoever
// finds no flush in progress writes the whole pending buffer; everyone else
// waits for the flush covering their bytes).
func (w *walFile) append(rec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.pend == nil && w.spare != nil {
		w.pend, w.spare = w.spare, nil
	}
	w.pend = append(w.pend, rec...)
	w.appended += int64(len(rec))
	w.waitFlushedLocked(w.appended)
	return w.err
}

// waitFlushedLocked blocks until the file durably holds target bytes (or the
// segment is poisoned), becoming the flusher whenever none is active — the
// one group-commit wait protocol append, sync, and close all share. Caller
// holds w.mu.
func (w *walFile) waitFlushedLocked(target int64) {
	for w.flushed < target && w.err == nil {
		if w.flushing {
			w.cond.Wait()
			continue
		}
		w.flushLocked()
	}
}

// flushLocked writes (and, in fsync mode, syncs) the whole pending buffer.
// The lock is released for the syscalls so concurrent appenders can stage the
// next group behind it. Caller holds w.mu with w.flushing == false.
func (w *walFile) flushLocked() {
	w.flushing = true
	if w.window > 0 {
		// Group-commit window: hold the flush open briefly so concurrent
		// appenders can stage behind it and amortize the syscall (and fsync)
		// across a bigger group. flushing == true keeps a second flusher from
		// starting; durability semantics are unchanged — every append still
		// waits for the write covering its bytes.
		w.mu.Unlock()
		time.Sleep(w.window)
		w.mu.Lock()
	}
	buf := w.pend
	w.pend = nil
	goal := w.flushed + int64(len(buf))
	w.mu.Unlock()
	m := w.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	_, err := w.f.Write(buf)
	if err == nil && w.fsync {
		err = w.f.Sync()
	}
	if m != nil {
		m.flushDur.ObserveDuration(time.Since(start))
		m.commitBytes.Observe(float64(len(buf)))
	}
	w.mu.Lock()
	w.flushing = false
	if err != nil {
		w.err = err
	} else {
		w.flushed = goal
	}
	if w.spare == nil || cap(buf) > cap(w.spare) {
		w.spare = buf[:0] // recycle the written buffer for the next group
	}
	w.cond.Broadcast()
}

// size returns the logical segment size (written + staged bytes).
func (w *walFile) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// sync flushes anything staged and forces an fsync regardless of mode.
func (w *walFile) sync() error {
	w.mu.Lock()
	w.waitFlushedLocked(w.appended)
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.f.Sync()
}

// close flushes staged bytes and closes the file.
func (w *walFile) close() error {
	w.mu.Lock()
	w.waitFlushedLocked(w.appended)
	err := w.err
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
