package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/history"
	"repro/internal/transport"
)

// A checkpoint file pins the merged accumulator at a WAL rotation point, so
// recovery replays only the segments written after it. The state itself
// travels as a version-2 transport snapshot frame — count, epoch, and the full
// mechanism identity included — wrapped in a CRC'd envelope that also names
// the WAL segment the checkpoint precedes and carries the idempotency-key
// table of everything the checkpoint covers:
//
//	magic   [4]byte  "LDPC"
//	version uint8    (1)
//	crc     uint32   big-endian IEEE CRC-32 of the payload
//	length  uint32   big-endian payload byte count
//	payload:
//	  seq      uint64 big-endian  segment sequence this checkpoint precedes
//	  snapshot one v2 snapshot frame (transport.EncodeSnapshotFrame)
//	  keyCount uint32 big-endian, then keyCount entries, oldest first:
//	    keyLen uint8, then keyLen bytes    idempotency key
//	    reports uint64 big-endian          reports absorbed under the key
//
// Invariant: state(checkpoint-<g>) equals the replay of every WAL segment
// with sequence < g, so state(checkpoint-<g>) + replay(wal-<g>, wal-<g+1>, …)
// is always the full collector state, whichever rotation the crash
// interrupted. The key table obeys the same invariant — it totals the keyed
// records of every segment < g (bounded: the oldest keys beyond the table
// cap are dropped, mirroring the transport's idempotency LRU) — so a keyed
// request whose records straddle a checkpoint still recovers its full
// absorbed count, not just the replayed tail's share.
const (
	checkpointMagic   = "LDPC"
	checkpointVersion = 1

	// maxCheckpointSize bounds a checkpoint file read: envelope + the
	// transport's own snapshot frame cap + a full key table.
	maxCheckpointSize = history.MaxCheckpointSize

	// maxTrackedKeys bounds the per-key totals carried across checkpoints,
	// matching the transport idempotency LRU's horizon: a retry older than
	// the newest maxTrackedKeys keyed requests re-absorbs, with or without a
	// crash in between.
	maxTrackedKeys = history.MaxTrackedKeys
)

// KeyCount is one idempotency key's recovered total: how many reports the
// log proves were absorbed under it. It is the history package's type: the
// streaming checkpoint codec there and the buffered reference codec here
// carry the same table.
type KeyCount = history.KeyCount

var errInvalidCheckpoint = errors.New("durable: invalid checkpoint file")

// encodeCheckpoint serializes the envelope around an already-framed snapshot.
func encodeCheckpoint(seq uint64, snap transport.Snapshot, keys []KeyCount) ([]byte, error) {
	if len(keys) > maxTrackedKeys {
		keys = keys[len(keys)-maxTrackedKeys:] // newest win, as in the LRU
	}
	var pb bytes.Buffer
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	pb.Write(s[:])
	if err := transport.EncodeSnapshotFrame(&pb, snap); err != nil {
		return nil, fmt.Errorf("durable: encode checkpoint snapshot: %w", err)
	}
	var kc [4]byte
	binary.BigEndian.PutUint32(kc[:], uint32(len(keys)))
	pb.Write(kc[:])
	for _, k := range keys {
		if len(k.Key) > maxRecordMeta {
			return nil, fmt.Errorf("durable: checkpoint key exceeds %d bytes", maxRecordMeta)
		}
		pb.WriteByte(byte(len(k.Key)))
		pb.WriteString(k.Key)
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(k.Reports))
		pb.Write(n[:])
	}
	payload := pb.Bytes()
	out := make([]byte, 0, recordHeaderLen+len(payload))
	out = append(out, checkpointMagic...)
	out = append(out, checkpointVersion)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// DecodeCheckpoint parses one checkpoint envelope and returns the segment
// sequence it precedes, the snapshot it pins, and its idempotency-key table.
// Any defect — short file, bad magic, CRC mismatch, trailing bytes, an
// unreadable snapshot frame or key table — returns an error; recovery then
// falls back to the previous checkpoint.
func DecodeCheckpoint(data []byte) (uint64, transport.Snapshot, []KeyCount, error) {
	fail := func(format string, args ...any) (uint64, transport.Snapshot, []KeyCount, error) {
		return 0, transport.Snapshot{}, nil, fmt.Errorf("%w: %s", errInvalidCheckpoint, fmt.Sprintf(format, args...))
	}
	if len(data) < recordHeaderLen {
		return fail("%d bytes is shorter than the header", len(data))
	}
	if string(data[:4]) != checkpointMagic {
		return fail("bad magic %q", data[:4])
	}
	if data[4] != checkpointVersion {
		return fail("unsupported version %d", data[4])
	}
	wantCRC := binary.BigEndian.Uint32(data[5:])
	plen := binary.BigEndian.Uint32(data[9:])
	payload := data[recordHeaderLen:]
	if uint64(plen) != uint64(len(payload)) {
		return fail("declares %d payload bytes, carries %d", plen, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return fail("CRC mismatch")
	}
	if len(payload) < 8 {
		return fail("truncated at its sequence")
	}
	seq := binary.BigEndian.Uint64(payload)
	fr := bytes.NewReader(payload[8:])
	snap, err := transport.DecodeSnapshotFrame(fr)
	if err != nil {
		return fail("%v", err)
	}
	var kc [4]byte
	if _, err := io.ReadFull(fr, kc[:]); err != nil {
		return fail("truncated at its key-table count")
	}
	nkeys := binary.BigEndian.Uint32(kc[:])
	if nkeys > maxTrackedKeys {
		return fail("declares %d keys, limit %d", nkeys, maxTrackedKeys)
	}
	keys := make([]KeyCount, 0, nkeys)
	for i := uint32(0); i < nkeys; i++ {
		l, err := fr.ReadByte()
		if err != nil {
			return fail("truncated at key %d", i)
		}
		kb := make([]byte, int(l)+8)
		if _, err := io.ReadFull(fr, kb); err != nil {
			return fail("truncated at key %d", i)
		}
		keys = append(keys, KeyCount{
			Key:     string(kb[:l]),
			Reports: int64(binary.BigEndian.Uint64(kb[l:])),
		})
	}
	if fr.Len() != 0 {
		return fail("%d trailing bytes after the key table", fr.Len())
	}
	return seq, snap, keys, nil
}

// loadCheckpoint reads and validates one checkpoint file — either version,
// streamed — additionally pinning the envelope's sequence to the one its
// filename declares.
func loadCheckpoint(path string, wantSeq uint64) (transport.Snapshot, []KeyCount, error) {
	snap, keys, _, err := history.ReadCheckpointFile(path, wantSeq)
	return snap, keys, err
}

// writeCheckpointFile writes the checkpoint atomically and streaming via the
// history codec: temp file in the same directory, chunked payload, fsync,
// rename, directory fsync. A crash leaves either the old directory contents
// or the complete new file — never a half-written checkpoint under the final
// name. The file and directory are synced even in no-fsync WAL mode because
// a checkpoint's durability gates the pruning of the segments it replaces.
// Uncompressed output is byte-identical to encodeCheckpoint's.
func writeCheckpointFile(dir string, seq uint64, snap transport.Snapshot, keys []KeyCount, compress bool) (string, error) {
	return history.WriteCheckpointFile(dir, seq, snap, keys, compress)
}

// syncDir fsyncs a directory so renames and creations within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
