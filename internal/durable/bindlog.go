package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The router's key→shard binding log reuses the WAL's record framing — the
// same "LDPW" magic, CRC-over-payload header, and strict decoding — at record
// version 2, whose payload is
//
//	keyLen      uint8, then keyLen bytes       idempotency key
//	endpointLen uint8, then endpointLen bytes  shard base URL
//
// One record is one (re)binding; replaying a log in append order with
// latest-wins rebuilds the router's binding LRU, so a keyed retry that
// arrives after a router restart still routes to the shard whose idempotency
// cache saw the key first, instead of double-absorbing on a neighbor.
const bindingVersion = 2

// Binding is one idempotency-key→shard-endpoint routing decision.
type Binding struct {
	Key      string
	Endpoint string
}

// AppendBinding appends b's record encoding to buf.
func AppendBinding(buf []byte, b Binding) ([]byte, error) {
	if len(b.Key) == 0 || len(b.Key) > maxRecordMeta {
		return buf, fmt.Errorf("durable: binding key length %d outside 1..%d", len(b.Key), maxRecordMeta)
	}
	if len(b.Endpoint) == 0 || len(b.Endpoint) > maxRecordMeta {
		return buf, fmt.Errorf("durable: binding endpoint length %d outside 1..%d", len(b.Endpoint), maxRecordMeta)
	}
	start := len(buf)
	out := append(buf, recordMagic...)
	out = append(out, bindingVersion)
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0) // crc + payload length, patched below
	payloadStart := len(out)
	out = append(out, byte(len(b.Key)))
	out = append(out, b.Key...)
	out = append(out, byte(len(b.Endpoint)))
	out = append(out, b.Endpoint...)
	payload := out[payloadStart:]
	binary.BigEndian.PutUint32(out[start+5:], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(out[start+9:], uint32(len(payload)))
	return out, nil
}

// DecodeBinding reads one binding record. A reader exhausted exactly at a
// record boundary returns io.EOF; one exhausted mid-record returns
// ErrTornRecord, the crash signature the tail policy drops.
func DecodeBinding(r io.Reader) (Binding, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Binding{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Binding{}, fmt.Errorf("%w: truncated header", ErrTornRecord)
		}
		return Binding{}, fmt.Errorf("durable: read binding record header: %w", err)
	}
	if string(hdr[:4]) != recordMagic {
		return Binding{}, fmt.Errorf("%w: bad magic %q", errInvalidRecord, hdr[:4])
	}
	if hdr[4] != bindingVersion {
		return Binding{}, fmt.Errorf("%w: unsupported binding version %d", errInvalidRecord, hdr[4])
	}
	wantCRC := binary.BigEndian.Uint32(hdr[5:])
	plen := binary.BigEndian.Uint32(hdr[9:])
	if plen > 2*(maxRecordMeta+1) {
		return Binding{}, fmt.Errorf("%w: %d-byte payload exceeds a binding record's maximum", errInvalidRecord, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Binding{}, fmt.Errorf("%w: truncated payload", ErrTornRecord)
		}
		return Binding{}, fmt.Errorf("durable: read binding record payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return Binding{}, fmt.Errorf("%w: CRC mismatch", errInvalidRecord)
	}
	var b Binding
	buf := payload
	for _, field := range []struct {
		what string
		dst  *string
	}{{"key", &b.Key}, {"endpoint", &b.Endpoint}} {
		if len(buf) < 1 {
			return Binding{}, fmt.Errorf("%w: truncated at its %s length", errCorruptRecord, field.what)
		}
		n := int(buf[0])
		buf = buf[1:]
		if len(buf) < n {
			return Binding{}, fmt.Errorf("%w: truncated at its %s", errCorruptRecord, field.what)
		}
		*field.dst = string(buf[:n])
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return Binding{}, fmt.Errorf("%w: %d trailing bytes", errCorruptRecord, len(buf))
	}
	if b.Key == "" || b.Endpoint == "" {
		return Binding{}, fmt.Errorf("%w: empty key or endpoint", errCorruptRecord)
	}
	return b, nil
}

// BindingLog is the append-only durable store behind a router's key→shard
// binding LRU. Appends are fsynced before they return when opened with fsync,
// so an acknowledged bind survives a router crash.
type BindingLog struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	fsync   bool
	records int // records in the file (for the compaction trigger)
	live    int // distinct keys at last open/compact
}

// OpenBindingLog opens (creating if needed) the log at path, replays every
// intact record, and returns the live bindings oldest-bind-first with
// latest-wins per key — replaying them into an LRU in order reproduces the
// pre-restart recency. A torn tail (the crash case) is truncated away; a log
// that has accumulated far more records than live keys is compacted in place
// via an atomic rewrite.
func OpenBindingLog(path string, fsync bool) (*BindingLog, []Binding, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	records := 0
	good := int64(0)
	byKey := make(map[string]int) // key → index in order
	var order []Binding
	cr := &countingReader{r: bufio.NewReader(f)}
	for {
		b, err := DecodeBinding(cr)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Anything after the last intact record — torn or garbage — is the
			// dropped tail; sequential appends tear only at the physical end.
			break
		}
		records++
		good = cr.n
		if i, ok := byKey[b.Key]; ok {
			// Rebind: move the key to the newest position.
			order = append(order[:i], order[i+1:]...)
			for k, ob := range order[i:] {
				byKey[ob.Key] = i + k
			}
		}
		byKey[b.Key] = len(order)
		order = append(order, b)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &BindingLog{f: f, path: path, fsync: fsync, records: records, live: len(order)}
	if records > 2*len(order)+64 {
		if err := l.compactLocked(order); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return l, order, nil
}

// Append durably records one (re)binding.
func (l *BindingLog) Append(b Binding) error {
	rec, err := AppendBinding(nil, b)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("durable: binding log is closed")
	}
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	if l.fsync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.records++
	return nil
}

// compactLocked atomically rewrites the log to exactly the live bindings.
// Caller guarantees exclusive access (open, before the log is shared).
func (l *BindingLog) compactLocked(live []Binding) error {
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".compact*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var buf []byte
	for _, b := range live {
		if buf, err = AppendBinding(buf, b); err != nil {
			tmp.Close()
			return err
		}
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	l.f = f
	l.records, l.live = len(live), len(live)
	return syncDir(dir)
}

// Close flushes and closes the log.
func (l *BindingLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
