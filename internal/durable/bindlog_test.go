package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBindingRecordRoundTrip(t *testing.T) {
	bindings := []Binding{
		{Key: "k", Endpoint: "http://a:1"},
		{Key: strings.Repeat("K", maxRecordMeta), Endpoint: strings.Repeat("E", maxRecordMeta)},
		{Key: "key-2", Endpoint: "http://shard-1.internal:8089"},
	}
	var buf []byte
	for _, b := range bindings {
		var err error
		if buf, err = AppendBinding(buf, b); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf)
	for i, want := range bindings {
		got, err := DecodeBinding(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := DecodeBinding(r); err != io.EOF {
		t.Fatalf("want io.EOF at the boundary, got %v", err)
	}
}

func TestBindingRecordRejects(t *testing.T) {
	if _, err := AppendBinding(nil, Binding{Key: "", Endpoint: "e"}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := AppendBinding(nil, Binding{Key: "k", Endpoint: strings.Repeat("e", maxRecordMeta+1)}); err == nil {
		t.Error("oversized endpoint accepted")
	}

	good, err := AppendBinding(nil, Binding{Key: "k", Endpoint: "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	// Torn mid-payload and mid-header.
	for _, cut := range []int{len(good) - 3, recordHeaderLen - 2} {
		if _, err := DecodeBinding(bytes.NewReader(good[:cut])); !errors.Is(err, ErrTornRecord) {
			t.Errorf("cut at %d: want ErrTornRecord, got %v", cut, err)
		}
	}
	// A flipped payload byte must fail the CRC.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01
	if _, err := DecodeBinding(bytes.NewReader(bad)); err == nil {
		t.Error("CRC mismatch accepted")
	}
	// A WAL-version record is not a binding record.
	bad = append([]byte(nil), good...)
	bad[4] = recordVersion
	if _, err := DecodeBinding(bytes.NewReader(bad)); err == nil {
		t.Error("wrong record version accepted")
	}
}

// Replay is latest-wins per key while keeping oldest-bind-first order, so the
// router's LRU rebuilds with pre-restart recency.
func TestBindingLogReplayLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bindings.log")
	l, got, err := OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d bindings", len(got))
	}
	appends := []Binding{
		{Key: "a", Endpoint: "http://one"},
		{Key: "b", Endpoint: "http://two"},
		{Key: "a", Endpoint: "http://three"}, // rebind: a is now newest
		{Key: "c", Endpoint: "http://one"},
	}
	for _, b := range appends {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := OpenBindingLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	want := []Binding{
		{Key: "b", Endpoint: "http://two"},
		{Key: "a", Endpoint: "http://three"},
		{Key: "c", Endpoint: "http://one"},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// A torn tail — the crash signature — is dropped and truncated away on open;
// every intact record before it survives, and the log stays appendable.
func TestBindingLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bindings.log")
	l, _, err := OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Binding{Key: "a", Endpoint: "http://one"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Binding{Key: "b", Endpoint: "http://two"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a partial third record at the physical end.
	torn, err := AppendBinding(nil, Binding{Key: "c", Endpoint: "http://three"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	l2, got, err := OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
		t.Fatalf("replay after torn tail: %+v", got)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d >= %d bytes", after.Size(), before.Size())
	}
	// The truncated log accepts appends cleanly at the new end.
	if err := l2.Append(Binding{Key: "c", Endpoint: "http://three"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != (Binding{Key: "c", Endpoint: "http://three"}) {
		t.Fatalf("append after truncation lost: %+v", got)
	}
}

// A log with far more records than live keys compacts on open: the file
// shrinks to exactly the live set, preserving replay order.
func TestBindingLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bindings.log")
	l, _, err := OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// 3 live keys rebound many times: records ≫ 2·live+64.
	for i := 0; i < 100; i++ {
		for _, k := range []string{"a", "b", "c"} {
			if err := l.Append(Binding{Key: k, Endpoint: "http://shard-" + k}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	l2, got, err := OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d live bindings, want 3", len(got))
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size()/10 {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	// And the compacted file replays identically.
	_, again, err := OpenBindingLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("compacted replay[%d] = %+v, want %+v", i, again[i], got[i])
		}
	}
}
