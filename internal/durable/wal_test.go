package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/protocol"
)

func sampleReports() []protocol.Report {
	return []protocol.Report{
		{Index: 3},
		{Index: -1 << 30},
		{Seed: 0xfeedface, Index: 7},
		{Bits: []bool{true, false, true, true, false, false, false, true, true}},
	}
}

func sampleRecord() Record {
	return Record{
		Epoch:   5,
		Key:     "00f1e2d3c4b5a6978877665544332211",
		Digest:  "deadbeefdeadbeef",
		Reports: sampleReports(),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for name, rec := range map[string]Record{
		"full":     sampleRecord(),
		"empty":    {},
		"unkeyed":  {Epoch: 9, Reports: []protocol.Report{{Index: 1}, {Index: 2}}},
		"nodigest": {Key: "k", Reports: sampleReports()},
	} {
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := DecodeRecord(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Epoch != rec.Epoch || got.Key != rec.Key || got.Digest != rec.Digest {
			t.Fatalf("%s: header changed: %+v != %+v", name, got, rec)
		}
		if len(got.Reports) != len(rec.Reports) {
			t.Fatalf("%s: %d reports, want %d", name, len(got.Reports), len(rec.Reports))
		}
		for i := range rec.Reports {
			if !reflect.DeepEqual(got.Reports[i], rec.Reports[i]) {
				t.Fatalf("%s: report %d changed: %+v != %+v", name, i, got.Reports[i], rec.Reports[i])
			}
		}
	}
}

// The crash-consistency foundation: a record truncated at ANY byte offset
// must decode as exactly one of io.EOF (offset 0, a clean boundary) or a torn
// record — never as a valid record and never as a panic.
func TestRecordTornAtEveryOffset(t *testing.T) {
	data, err := EncodeRecord(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off++ {
		_, err := DecodeRecord(bytes.NewReader(data[:off]))
		switch {
		case off == 0:
			if err != io.EOF {
				t.Fatalf("offset 0: got %v, want io.EOF", err)
			}
		default:
			if !errors.Is(err, ErrTornRecord) {
				t.Fatalf("offset %d: got %v, want a torn-record error", off, err)
			}
		}
	}
	if _, err := DecodeRecord(bytes.NewReader(data)); err != nil {
		t.Fatalf("untruncated record failed to decode: %v", err)
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	data, err := EncodeRecord(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	flip := func(off int) []byte {
		out := append([]byte(nil), data...)
		out[off] ^= 0xff
		return out
	}
	cases := map[string][]byte{
		"bad magic":      flip(0),
		"bad version":    flip(4),
		"bad crc":        flip(5),
		"payload bitrot": flip(recordHeaderLen + 2),
	}
	for name, d := range cases {
		if _, err := DecodeRecord(bytes.NewReader(d)); !errors.Is(err, errInvalidRecord) {
			t.Fatalf("%s: got %v, want an invalid-record error", name, err)
		}
	}
	// A hostile length prefix over the cap must be rejected before allocation.
	big := append([]byte(nil), data...)
	big[9], big[10], big[11], big[12] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeRecord(bytes.NewReader(big)); !errors.Is(err, errInvalidRecord) {
		t.Fatalf("oversized payload length: got %v", err)
	}
}

// A CRC-valid payload that does not parse is the writer's own bytes gone
// wrong — recovery must refuse it loudly, not drop it as a torn tail.
func TestRecordCorruptPayloadIsNotTorn(t *testing.T) {
	rec := sampleRecord()
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Re-frame the payload with a wrong declared report count but a correct
	// CRC for the altered bytes.
	payload := append([]byte(nil), data[recordHeaderLen:]...)
	countOff := 8 + 1 + len(rec.Key) + 1 + len(rec.Digest)
	payload[countOff+3]++ // declare one more report than the frames carry
	out := appendCRCAndLen(data[:5], payload)
	if _, err := DecodeRecord(bytes.NewReader(out)); !errors.Is(err, errCorruptRecord) {
		t.Fatalf("got %v, want a corrupt-record error", err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	for _, fsync := range []bool{false, true} {
		t.Run(fmt.Sprintf("fsync=%v", fsync), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal-00000000.log")
			w, err := openWALFile(path, fsync, 0)
			if err != nil {
				t.Fatal(err)
			}
			const writers, each = 8, 25
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						data, err := EncodeRecord(Record{Epoch: 0, Key: fmt.Sprintf("g%d-%d", g, i), Reports: []protocol.Report{{Index: g*each + i}}})
						if err != nil {
							errs <- err
							return
						}
						if err := w.append(data); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			// Every record must be present, complete, and decodable.
			var rec Recovery
			if _, _, err := replaySegment(path, false, 0, true, Options{Replay: func(Record) error { return nil }}, &rec, newKeyTable()); err != nil {
				t.Fatal(err)
			}
			if rec.ReplayedRecords != writers*each || rec.DroppedTailBytes != 0 {
				t.Fatalf("replayed %d records (dropped %d bytes), want %d intact", rec.ReplayedRecords, rec.DroppedTailBytes, writers*each)
			}
		})
	}
}

// appendCRCAndLen re-frames a payload behind an existing magic+version prefix.
func appendCRCAndLen(prefix, payload []byte) []byte {
	out := append([]byte(nil), prefix...)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}
