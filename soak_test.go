// Soak tier: the loadgen scenario harness doubles as a go test tier that
// drives the full ldprouter→ldpserve deployment — real subprocess shards,
// real SIGKILLs, WAL recovery, drains, and lossy proxies — under a seeded
// 100k-client zipfian storm, then asserts the two system-level invariants
// everything else in this repo argues for locally:
//
//   - exactly-once: every acknowledged report is absorbed exactly once,
//     through kill/restart/drain/storm (acknowledged == absorbed);
//   - estimate envelopes: the merged estimate lands inside the repo's
//     statistical-acceptance envelopes (6σ per cell with 1.5× variance
//     slack, 4× expected TSE) against the generator's known ground truth.
//
// These runs take tens of seconds, so they skip under -short; CI runs them
// in the race matrix without -short.
package ldp_test

import (
	"context"
	"os"
	"testing"

	"repro/internal/loadgen"
)

// TestLoadgenShardProcess is the re-exec entry point for subprocess shards:
// the spawner relaunches this test binary with -test.run pinned here and the
// LDPLOAD_* environment set, and RunShardFromEnv serves a durable shard until
// killed (it never returns control to the test runner in that case). In a
// normal test run the environment is unset and this is an instant no-op.
func TestLoadgenShardProcess(t *testing.T) {
	if loadgen.RunShardFromEnv() {
		os.Exit(0) // unreachable: RunShardFromEnv exits itself; belt and braces
	}
}

// soakSpawner re-execs this test binary as shard processes.
func soakSpawner() loadgen.SpawnFunc {
	return loadgen.NewSubprocessSpawner("-test.run=^TestLoadgenShardProcess$")
}

func runSoak(t *testing.T, scn loadgen.Scenario) *loadgen.Scorecard {
	t.Helper()
	card, err := loadgen.Run(context.Background(), loadgen.RunConfig{
		Scenario: scn,
		Deploy: loadgen.DeployConfig{
			Shards:  3,
			BaseDir: t.TempDir(),
			Spawn:   soakSpawner(),
			Shard:   loadgen.ShardConfig{CheckpointEvery: 5000},
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	return card
}

// TestSoakExactlyOnceUnderLoad asserts the durability pipeline's headline
// invariant at storm scale: after 100k seeded clients pushed reports through
// a fleet that lost a shard to SIGKILL, drained another, and ran a lossy
// proxy plan, every acknowledged report is absorbed exactly once.
func TestSoakExactlyOnceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak tier: skipped under -short")
	}
	card := runSoak(t, loadgen.SoakScenario(1))
	if card.Counts.AckedReports != card.Counts.OfferedReports {
		t.Errorf("settle left reports unacknowledged: offered %d, acked %d",
			card.Counts.OfferedReports, card.Counts.AckedReports)
	}
	if !card.Counts.ExactlyOnce {
		t.Errorf("exactly-once violated: acked %d, absorbed %d (lost %+d)",
			card.Counts.AckedReports, card.Counts.AbsorbedReports,
			card.Counts.AbsorbedReports-card.Counts.AckedReports)
	}
	if card.Counts.ScheduleFired != card.Counts.ScheduleEvents {
		t.Errorf("fault schedule incomplete: fired %d of %d events",
			card.Counts.ScheduleFired, card.Counts.ScheduleEvents)
	}
	if card.Ops.MinShardsReady >= card.Ops.ShardsTotal {
		t.Errorf("storm never degraded the fleet: min ready %d of %d",
			card.Ops.MinShardsReady, card.Ops.ShardsTotal)
	}
}

// TestSoakEstimateEnvelopeZipfian asserts the statistical half: the merged
// estimate over the zipfian (s=1.1, time-shifting) population lands inside
// the acceptance envelopes, and the deterministic sections reproduce
// bit-identically at the same seed on a second full run.
func TestSoakEstimateEnvelopeZipfian(t *testing.T) {
	if testing.Short() {
		t.Skip("soak tier: skipped under -short")
	}
	scn := loadgen.SoakScenario(2)
	card := runSoak(t, scn)
	if !card.Estimates.InEnvelope {
		t.Errorf("estimates outside envelope: max cell err %.2f (bound %.2f), tse %.2f (bound %.2f)",
			card.Estimates.MaxAbsCellError, card.Estimates.CellEnvelope,
			card.Estimates.TSE, card.Estimates.TSEBound)
	}
	if card.Estimates.MaxAbsCellError == 0 {
		t.Error("zero estimate error over a randomized mechanism: scoring is broken")
	}
	again := runSoak(t, scn)
	if !card.DeterministicEqual(again) {
		t.Errorf("scorecards diverge at seed %d:\n first: %+v %+v\nsecond: %+v %+v",
			scn.Seed, card.Counts, card.Estimates, again.Counts, again.Estimates)
	}
}
