package ldp_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	ldp "repro"
	"repro/internal/benchfix"
)

// fleetShard is a controllable in-process shard: a real collector behind a
// switch that makes the endpoint unreachable (connection aborted mid-flight)
// on demand, plus the service handle for readiness control.
type fleetShard struct {
	col  *ldp.Collector
	svc  *ldp.CollectorService
	hs   *httptest.Server
	down atomic.Bool
}

func newFleetShard(t *testing.T, agg ldp.Aggregator, w ldp.Workload) *fleetShard {
	t.Helper()
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	sh := &fleetShard{col: col, svc: svc}
	sh.hs = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if sh.down.Load() {
			panic(http.ErrAbortHandler) // connection reset: unreachable, not a clean 5xx
		}
		svc.Handler().ServeHTTP(rw, req)
	}))
	t.Cleanup(sh.hs.Close)
	return sh
}

// fleetFixture builds a mechanism and n shards sharing it.
func fleetFixture(t *testing.T, domain, n int) (ldp.Aggregator, ldp.Workload, []*fleetShard) {
	t.Helper()
	w := ldp.Histogram(domain)
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(domain, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*fleetShard, n)
	for i := range shards {
		shards[i] = newFleetShard(t, agg, w)
	}
	return agg, w, shards
}

func registerAll(t *testing.T, ctx context.Context, f *ldp.Fleet, shards []*fleetShard) {
	t.Helper()
	for _, sh := range shards {
		if err := f.Register(ctx, sh.hs.URL); err != nil {
			t.Fatalf("register %s: %v", sh.hs.URL, err)
		}
	}
}

// The healthy path end to end: keyed ingest round-robins across registered
// shards, FlushAll delivers every queued batch, and the merged snapshot is
// complete (every shard fresh) and holds exactly one copy of every report.
func TestFleetRoutesAndMergesComplete(t *testing.T) {
	const domain, total = 16, 120
	agg, w, shards := fleetFixture(t, domain, 3)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)),
		ldp.WithFleetRemoteOptions(ldp.WithRemoteBatch(8)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)
	if got := f.ReadyCount(); got != 3 {
		t.Fatalf("ReadyCount = %d after registering 3 live shards", got)
	}

	reports := make([]ldp.Report, total)
	for i := range reports {
		reports[i] = ldp.Report{Index: i % domain}
	}
	for i := 0; i < total; i += 10 {
		if err := f.IngestBatch(ctx, reports[i:i+10]); err != nil {
			t.Fatalf("ingest batch at %d: %v", i, err)
		}
	}
	if err := f.FlushAll(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}

	snap, cov, err := f.Snap(ctx)
	if err != nil {
		t.Fatalf("snap: %v", err)
	}
	if !cov.Complete() || cov.Fresh != 3 || cov.String() != "3/3 shards" {
		t.Fatalf("coverage = %+v (%s), want complete 3/3", cov, cov)
	}
	if snap.Count() != total {
		t.Fatalf("merged count %v, want %v", snap.Count(), total)
	}
	var mass float64
	for _, v := range snap.State() {
		mass += v
	}
	if mass != total {
		t.Fatalf("merged mass %v, want %v (loss or duplication)", mass, total)
	}
	// Every shard actually took a share: the router spread the load.
	for i, sh := range shards {
		if sh.col.Count() == 0 {
			t.Fatalf("shard %d received nothing; routing did not rotate", i)
		}
	}
}

// A shard aggregating under a different mechanism must be refused at
// registration: merging across mechanisms is a correctness error, not a
// health event.
func TestFleetRefusesMismatchedShard(t *testing.T) {
	const domain = 8
	agg, w, shards := fleetFixture(t, domain, 1)
	otherAgg, err := ldp.NewAggregator(benchfix.RRStrategy(domain, 2.0)) // different ε
	if err != nil {
		t.Fatal(err)
	}
	f, err := ldp.NewFleet(otherAgg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	err = f.Register(context.Background(), shards[0].hs.URL)
	if err == nil || !strings.Contains(err.Error(), "mechanism") {
		t.Fatalf("registering a mismatched shard = %v, want a mechanism refusal", err)
	}
	if got := len(f.Members()); got != 0 {
		t.Fatalf("mismatched shard joined the membership (%d members)", got)
	}
	_ = agg
}

// A shard that is down at registration is admitted gated-out — it may be
// booting or recovering — and joins (with the identity handshake completed)
// once a probe finds it up.
func TestFleetAdmitsUnreachableShardAndRecovers(t *testing.T) {
	agg, w, shards := fleetFixture(t, 8, 1)
	sh := shards[0]
	sh.down.Store(true)

	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Register(ctx, sh.hs.URL); err != nil {
		t.Fatalf("registering an unreachable shard should admit it not-ready, got %v", err)
	}
	ms := f.Members()
	if len(ms) != 1 || ms[0].Ready || ms[0].Verified {
		t.Fatalf("unreachable shard state = %+v, want admitted, not ready, unverified", ms)
	}
	if err := f.IngestBatch(ctx, []ldp.Report{{Index: 1}}); !errors.Is(err, ldp.ErrNoReadyShards) {
		t.Fatalf("ingest with no ready shard = %v, want ErrNoReadyShards", err)
	}

	sh.down.Store(false)
	ms = f.Probe(ctx)
	if !ms[0].Ready || !ms[0].Verified {
		t.Fatalf("after recovery probe, state = %+v, want ready and verified", ms[0])
	}
	if err := f.IngestBatch(ctx, []ldp.Report{{Index: 1}}); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
}

// Health gating: a shard that declares itself not-ready (recovering,
// draining) is gated out of routing on the next probe immediately; an
// unreachable shard only after UnhealthyAfter consecutive probe failures —
// one blip does not evict it.
func TestFleetHealthGating(t *testing.T) {
	agg, w, shards := fleetFixture(t, 8, 2)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)),
		ldp.WithFleetUnhealthyAfter(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	// Self-declared not-ready: gated on the first probe.
	shards[0].svc.SetReady(false, "recovering")
	ms := f.Probe(ctx)
	if ms[0].Ready || ms[0].Reason != "recovering" {
		t.Fatalf("recovering shard state = %+v, want gated with its own reason", ms[0])
	}
	if got := f.ReadyCount(); got != 1 {
		t.Fatalf("ReadyCount = %d with one recovering shard, want 1", got)
	}

	// Recovery: re-admitted on the next probe.
	shards[0].svc.SetReady(true, "")
	if ms = f.Probe(ctx); !ms[0].Ready {
		t.Fatalf("recovered shard still gated: %+v", ms[0])
	}

	// Unreachable: survives one failed probe, gated after the second.
	shards[1].down.Store(true)
	if ms = f.Probe(ctx); !ms[1].Ready {
		t.Fatalf("shard gated after a single probe blip: %+v", ms[1])
	}
	if ms = f.Probe(ctx); ms[1].Ready {
		t.Fatalf("shard still routable after %d consecutive probe failures", 2)
	}
	// And one good probe resets the failure streak.
	shards[1].down.Store(false)
	if ms = f.Probe(ctx); !ms[1].Ready {
		t.Fatalf("shard not re-admitted after recovery: %+v", ms[1])
	}
}

// Degraded merge: with one shard unreachable, Snap still answers — the dead
// shard contributes its last-good snapshot, the coverage says "3/3 shards
// (1 stale)", and the merged count is exact up to that shard's staleness.
// With the stale fallback disabled the shard is an honest gap instead:
// "2/3 shards (1 missing)" carrying its last-good epoch and count.
func TestFleetDegradedMerge(t *testing.T) {
	const domain = 16
	agg, w, shards := fleetFixture(t, domain, 3)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)),
		ldp.WithFleetRemoteOptions(ldp.WithRemoteBatch(4)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	// Seed every shard with distinct mass and take a complete snapshot so the
	// fleet holds a last-good state per shard.
	for i := 0; i < 30; i++ {
		if err := f.IngestBatch(ctx, []ldp.Report{{Index: i % domain}, {Index: (i + 1) % domain}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, cov, err := f.Snap(ctx); err != nil || !cov.Complete() {
		t.Fatalf("baseline snap = %v (%s), want complete", err, cov)
	}

	// Kill shard 2 and merge again: stale fallback keeps full coverage.
	shards[2].down.Store(true)
	snap, cov, err := f.Snap(ctx)
	if err != nil {
		t.Fatalf("degraded snap: %v", err)
	}
	if cov.Merged() != 3 || cov.Stale != 1 || cov.Complete() {
		t.Fatalf("degraded coverage = %+v (%s), want 3 merged with 1 stale", cov, cov)
	}
	if cov.String() != "3/3 shards (1 stale)" {
		t.Fatalf("coverage string = %q", cov.String())
	}
	sc := cov.Shards[2]
	if sc.Status != ldp.CoverageStale || sc.Epoch == 0 || sc.Count != shards[2].col.Count() || sc.Err == "" {
		t.Fatalf("stale shard annotation = %+v, want last-good epoch/count and the failure", sc)
	}
	if snap.Count() != 60 {
		t.Fatalf("degraded merge count %v, want 60 (nothing absorbed since last good)", snap.Count())
	}

	// Same outage, stale fallback off: partial coverage, honest gap.
	strict, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)),
		ldp.WithFleetStaleFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	// Shard 2 is down; register admits it not-ready, and the merge has no
	// last-good state for it.
	registerAll(t, ctx, strict, shards)
	snap, cov, err = strict.Snap(ctx)
	if err != nil {
		t.Fatalf("partial snap: %v", err)
	}
	if cov.Merged() != 2 || cov.Stale != 0 || cov.Total != 3 {
		t.Fatalf("partial coverage = %+v (%s), want 2/3 fresh", cov, cov)
	}
	if cov.String() != "2/3 shards (1 missing)" {
		t.Fatalf("coverage string = %q", cov.String())
	}
	if got := cov.Shards[2].Status; got != ldp.CoverageMissing {
		t.Fatalf("down shard status = %v, want missing", got)
	}
	if snap.Count() != 40 {
		t.Fatalf("partial merge count %v, want 40 (two shards of 20)", snap.Count())
	}
}

// Strict quorum: a merge covering fewer shards than the quorum refuses with
// a typed error carrying the coverage, instead of serving a partial answer.
func TestFleetQuorumRefusal(t *testing.T) {
	agg, w, shards := fleetFixture(t, 8, 3)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)),
		ldp.WithFleetStaleFallback(false), ldp.WithFleetQuorum(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	if _, cov, err := f.Snap(ctx); err != nil || cov.Merged() != 3 {
		t.Fatalf("full-strength snap = %v (%s)", err, cov)
	}

	shards[1].down.Store(true)
	_, _, err = f.Snap(ctx)
	var qe *ldp.QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("below-quorum snap error = %v, want *QuorumError", err)
	}
	if qe.Merged != 2 || qe.Quorum != 3 || qe.Coverage.Total != 3 {
		t.Fatalf("quorum error detail = %+v", qe)
	}
}

// Failover keeps exactly-once: a batch that fails to ship stays queued
// against the shard it was keyed to (its idempotency keys must replay on the
// SAME backend), later batches route around the outage, and once the shard
// heals a flush delivers the stranded batch exactly once.
func TestFleetFailoverPreservesExactlyOnce(t *testing.T) {
	const domain, total = 16, 90
	agg, w, shards := fleetFixture(t, domain, 3)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)),
		ldp.WithFleetRemoteOptions(ldp.WithRemoteBatch(5)),
		ldp.WithFleetUnhealthyAfter(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	reports := make([]ldp.Report, total)
	for i := range reports {
		reports[i] = ldp.Report{Index: i % domain}
	}

	// First third flows normally.
	for i := 0; i < 30; i += 5 {
		if err := f.IngestBatch(ctx, reports[i:i+5]); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 0 dies mid-stream: the batch that was routed to it fails after
	// retries and stays queued there; a probe gates it out and the rest of
	// the stream routes across the survivors.
	shards[0].down.Store(true)
	var failedAt int
	for i := 30; i < 60; i += 5 {
		if err := f.IngestBatch(ctx, reports[i:i+5]); err != nil {
			failedAt++
		}
	}
	if failedAt == 0 {
		t.Fatal("no batch ever hit the dead shard; routing never rotated onto it")
	}
	f.Probe(ctx)
	if got := f.ReadyCount(); got != 2 {
		t.Fatalf("ReadyCount = %d after gating the dead shard, want 2", got)
	}
	for i := 60; i < total; i += 5 {
		if err := f.IngestBatch(ctx, reports[i:i+5]); err != nil {
			t.Fatalf("ingest after gating still failed: %v", err)
		}
	}
	// A flush with the shard still down reports the failure but keeps its
	// queue; nothing is lost and nothing re-routes to a different backend.
	if err := f.FlushAll(ctx); err == nil {
		t.Fatal("flush with a dead shard holding queued reports returned nil")
	}

	// Heal, re-admit, and drain the stranded queue.
	shards[0].down.Store(false)
	f.Probe(ctx)
	if err := f.FlushAll(ctx); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}

	snap, cov, err := f.Snap(ctx)
	if err != nil || !cov.Complete() {
		t.Fatalf("final snap = %v (%s), want complete", err, cov)
	}
	if snap.Count() != total {
		t.Fatalf("final count %v, want exactly %v", snap.Count(), total)
	}
	var mass float64
	for _, v := range snap.State() {
		mass += v
	}
	if mass != total {
		t.Fatalf("final mass %v, want %v (loss or duplication across failover)", mass, total)
	}
}

// The breaker degrades a flapping shard to "stale + annotation" without even
// dialing it: after FailureThreshold consecutive snapshot failures the
// breaker opens, subsequent merges serve its last-good state marked stale,
// and after the cooldown a half-open probe re-admits it on success.
func TestFleetBreakerDegradesFlappingShard(t *testing.T) {
	agg, w, shards := fleetFixture(t, 8, 2)
	now := time.Unix(0, 0)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)),
		ldp.WithFleetRemoteOptions(ldp.WithRemoteBatch(4)),
		ldp.WithFleetBreakerPolicy(ldp.BreakerPolicy{
			FailureThreshold: 2,
			Cooldown:         time.Minute,
			Now:              func() time.Time { return now },
		}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	for i := 0; i < 8; i++ {
		if err := f.IngestBatch(ctx, []ldp.Report{{Index: i % 8}, {Index: (i + 1) % 8}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, cov, err := f.Snap(ctx); err != nil || !cov.Complete() {
		t.Fatalf("baseline snap = %v (%s)", err, cov)
	}

	// Two failed merges trip the breaker on shard 1.
	shards[1].down.Store(true)
	f.Snap(ctx)
	f.Snap(ctx)
	if ms := f.Members(); ms[1].Breaker != "open" {
		t.Fatalf("breaker = %q after %d failures, want open", ms[1].Breaker, 2)
	}
	// While open, merges still answer (stale) without touching the shard.
	if _, cov, err := f.Snap(ctx); err != nil || cov.Stale != 1 {
		t.Fatalf("open-breaker snap = %v (%s), want stale fallback", err, cov)
	}

	// Cooldown passes, the shard heals: the half-open probe closes it.
	shards[1].down.Store(false)
	now = now.Add(2 * time.Minute)
	if _, cov, err := f.Snap(ctx); err != nil || !cov.Complete() {
		t.Fatalf("post-recovery snap = %v (%s), want fresh again", err, cov)
	}
	if ms := f.Members(); ms[1].Breaker != "closed" {
		t.Fatalf("breaker = %q after successful probe, want closed", ms[1].Breaker)
	}
}

// Deregistration is membership, not health: the shard leaves the rotation
// and the coverage denominator immediately.
func TestFleetDeregister(t *testing.T) {
	agg, w, shards := fleetFixture(t, 8, 2)
	f, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	registerAll(t, ctx, f, shards)

	if !f.Deregister(shards[0].hs.URL) {
		t.Fatal("deregistering a member returned false")
	}
	if f.Deregister(shards[0].hs.URL) {
		t.Fatal("deregistering a non-member returned true")
	}
	_, cov, err := f.Snap(ctx)
	if err != nil || cov.Total != 1 || !cov.Complete() {
		t.Fatalf("post-deregister snap = %v (%s), want 1/1", err, cov)
	}
}
