package ldp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/postprocess"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Estimator is the one read path of the library: built once from an
// (Aggregator, Workload) pair, it reconstructs workload answers from *any*
// Snapshot of that mechanism — produced by an in-process Collector or
// Server, fetched from a remote ldpserve, or merged across several of them.
// Every method first verifies the snapshot's mechanism identity against the
// estimator's own (digest included), so a snapshot aggregated under a
// different configuration is rejected instead of silently mis-reconstructed.
//
// An Estimator is immutable after construction and safe for concurrent use.
type Estimator struct {
	agg  Aggregator
	work Workload
	info MechanismInfo

	// varOnce lazily prepares the closed-form per-query variance model on
	// first use — for strategy mechanisms that materializes V = W·B, which
	// Answers-only callers should not pay for.
	varOnce sync.Once
	varErr  error
	varW    *linalg.Matrix // materialized workload matrix W, p×n
	varV    *linalg.Matrix // strategy path: V = W·B, p×m
	varPU   float64        // oracle path: per-user per-count variance
	varRow2 []float64      // oracle path: per-query ‖w_i‖²
}

// NewEstimator prepares the read path for a mechanism aggregator and a
// workload over the same domain.
func NewEstimator(agg Aggregator, w Workload) (*Estimator, error) {
	if agg == nil {
		return nil, errors.New("ldp: nil aggregator")
	}
	if agg.Domain() != w.Domain() {
		return nil, fmt.Errorf("ldp: mechanism domain %d != workload domain %d", agg.Domain(), w.Domain())
	}
	return &Estimator{agg: agg, work: w, info: MechanismInfoOf(agg)}, nil
}

// Workload returns the workload the estimator answers.
func (e *Estimator) Workload() Workload { return e.work }

// Info returns the identity of the mechanism the estimator reconstructs for.
func (e *Estimator) Info() MechanismInfo { return e.info }

// Check verifies that a snapshot was aggregated under this estimator's
// mechanism: the accumulator width must match exactly, and every identity
// field both sides declare (mechanism, domain, ε, digest) must agree.
func (e *Estimator) Check(s Snapshot) error {
	if s.StateLen() != e.agg.StateLen() {
		return fmt.Errorf("ldp: snapshot has %d state entries, mechanism expects %d — mechanism mismatch", s.StateLen(), e.agg.StateLen())
	}
	if err := infoMismatch(e.info, s.info); err != nil {
		return fmt.Errorf("ldp: snapshot aggregated under a different mechanism configuration: %w", err)
	}
	return nil
}

// DataEstimate returns the unbiased estimate of the data vector from a
// snapshot (B·y for strategy mechanisms, the channel-inverted histogram for
// oracles).
func (e *Estimator) DataEstimate(s Snapshot) ([]float64, error) {
	if err := e.Check(s); err != nil {
		return nil, err
	}
	return e.agg.EstimateCounts(s.state, s.count), nil
}

// Answers returns the unbiased workload answer estimates W·x̂ from a
// snapshot.
func (e *Estimator) Answers(s Snapshot) ([]float64, error) {
	xh, err := e.DataEstimate(s)
	if err != nil {
		return nil, err
	}
	return e.work.MatVec(xh), nil
}

// ConsistentAnswers returns WNNLS-post-processed workload answers (Appendix
// A) from a snapshot: the answers of the non-negative data vector closest to
// the unbiased estimate, rescaled to the snapshot's known report count.
// Post-processing never weakens the privacy guarantee.
func (e *Estimator) ConsistentAnswers(s Snapshot) ([]float64, error) {
	answers, err := e.Answers(s)
	if err != nil {
		return nil, err
	}
	res, err := postprocess.Run(e.work, answers, postprocess.Options{TotalCount: s.count})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// maxVarianceElems bounds the dense matrices the per-query variance model
// materializes (W, and V = W·B for strategies) to ~½ GiB of float64s.
// Everything else in the library works through the Gram matrix WᵀW exactly
// so that huge implicit workloads (AllRange at large n) stay cheap; the
// per-query variance genuinely needs per-row access, so past this bound it
// returns a clean error instead of an allocation that dwarfs the machine.
const maxVarianceElems = 1 << 26

// prepareVariance builds the mechanism's closed-form per-query variance
// model once. Strategy mechanisms get the exact multinomial form (V = W·B
// materialized); frequency oracles the standard Wang-et-al. per-count
// variance with independent-count propagation through W.
func (e *Estimator) prepareVariance() error {
	e.varOnce.Do(func() {
		dim := e.work.Domain()
		if sl := e.agg.StateLen(); sl > dim {
			dim = sl
		}
		if int64(e.work.Queries())*int64(dim) > maxVarianceElems {
			e.varErr = fmt.Errorf("ldp: workload %s has %d queries — too large to materialize for closed-form per-query variance (limit %d matrix entries); Answers and ConsistentAnswers remain available", e.work.Name(), e.work.Queries(), maxVarianceElems)
			return
		}
		if sa, ok := e.agg.(interface {
			Strategy() *strategy.Strategy
			Recon() *linalg.Matrix
		}); ok {
			e.varW = e.work.Matrix()
			e.varV = linalg.Mul(e.varW, sa.Recon())
			return
		}
		if o, ok := e.agg.(interface{ VariancePerUser() float64 }); ok {
			e.varPU = o.VariancePerUser()
			e.varW = e.work.Matrix()
			e.varRow2 = make([]float64, e.varW.Rows())
			for i := range e.varRow2 {
				row := e.varW.Row(i)
				e.varRow2[i] = linalg.Dot(row, row)
			}
			return
		}
		e.varErr = fmt.Errorf("ldp: aggregator %T exposes no closed-form variance", e.agg)
	})
	return e.varErr
}

// Variance returns the closed-form variance of each unbiased workload answer
// at the snapshot's observed state.
//
// For a strategy mechanism the answer vector is V·y with y multinomial over
// the strategy's outputs, so Var[ŵ_i] = N·(Σ_o π_o V_io² − (V_iᵀπ)²)
// (Theorem 3.4 row-wise); the output distribution π is estimated by the
// observed response histogram y/N, making the plug-in variance
// Σ_o y_o V_io² − (V_iᵀy)²/N. For a frequency oracle each count estimate
// carries the closed-form per-user variance of Wang et al. and counts
// propagate through W as independent terms: Var[ŵ_i] ≈ N·v·‖w_i‖² (exact for
// unary encodings up to the O(f) frequency term, asymptotic for OLH).
func (e *Estimator) Variance(s Snapshot) ([]float64, error) {
	if err := e.Check(s); err != nil {
		return nil, err
	}
	if err := e.prepareVariance(); err != nil {
		return nil, err
	}
	out := make([]float64, e.work.Queries())
	if s.count <= 0 {
		return out, nil
	}
	for i := range out {
		out[i] = e.varianceAt(i, s.state, s.count)
	}
	return out, nil
}

// varianceAt reads query i's closed-form variance from the memoized model.
// Callers must have run prepareVariance successfully and hold count > 0.
func (e *Estimator) varianceAt(i int, state []float64, count float64) float64 {
	if e.varV != nil {
		vi := e.varV.Row(i)
		var lin, dot float64
		for o, y := range state {
			lin += y * vi[o] * vi[o]
			dot += y * vi[o]
		}
		v := lin - dot*dot/count
		if v < 0 {
			v = 0 // round-off guard: a variance is non-negative
		}
		return v
	}
	return count * e.varPU * e.varRow2[i]
}

// Interval is one two-sided confidence interval [Low, High].
type Interval struct {
	Low, High float64
}

// QueryAnswer is one streamed row of the read path: the query's index in the
// workload's row order, its unbiased answer, the closed-form variance of that
// answer, and the confidence interval at the stream's level.
type QueryAnswer struct {
	Index    int
	Answer   float64
	Variance float64
	CI       Interval
}

// rowVariancer computes one query's closed-form variance at a time from the
// workload's per-row view, never materializing W or V = W·B. The strategy
// path replicates linalg's row accumulation exactly (each V element sums over
// k ascending, zero entries of the workload row skipped), so every streamed
// variance is bit-identical to the one the materialized varV path computes.
// A rowVariancer owns its scratch and is single-goroutine; each stream call
// builds its own.
type rowVariancer struct {
	rows  workload.RowAccessor
	recon *linalg.Matrix // strategy path: B (n×m); nil on the oracle path
	varPU float64        // oracle path: per-user per-count variance
	wrow  []float64      // one row of W (n)
	vrow  []float64      // strategy path: one row of V = W·B (m)
}

// newRowVariancer prepares streaming variance, or returns (nil, nil) when the
// workload exposes no per-row view — the caller then falls back to the
// materialized model with its size bound. Every built-in workload family
// implements workload.RowAccessor, so the fallback only triggers for foreign
// Workload implementations.
func (e *Estimator) newRowVariancer() (*rowVariancer, error) {
	ra, ok := e.work.(workload.RowAccessor)
	if !ok {
		return nil, nil
	}
	n := e.work.Domain()
	if sa, ok := e.agg.(interface {
		Strategy() *strategy.Strategy
		Recon() *linalg.Matrix
	}); ok {
		b := sa.Recon()
		return &rowVariancer{rows: ra, recon: b,
			wrow: make([]float64, n), vrow: make([]float64, b.Cols())}, nil
	}
	if o, ok := e.agg.(interface{ VariancePerUser() float64 }); ok {
		return &rowVariancer{rows: ra, varPU: o.VariancePerUser(), wrow: make([]float64, n)}, nil
	}
	return nil, fmt.Errorf("ldp: aggregator %T exposes no closed-form variance", e.agg)
}

// variance returns query i's closed-form variance at the snapshot's state.
func (rv *rowVariancer) variance(i int, state []float64, count float64) float64 {
	rv.rows.QueryRow(i, rv.wrow)
	return rv.varianceFromRow(state, count)
}

// varianceFromRow computes the closed-form variance for the workload row
// already loaded into wrow (callers that inspect the row — the batch row
// cache — fill it via rv.rows.QueryRow first).
func (rv *rowVariancer) varianceFromRow(state []float64, count float64) float64 {
	if rv.recon == nil {
		return count * rv.varPU * linalg.Dot(rv.wrow, rv.wrow)
	}
	// Row i of V = W·B with mulToRows' exact accumulation order: each element
	// sums over k ascending, skipping zero workload entries.
	clear(rv.vrow)
	for k, av := range rv.wrow {
		if av == 0 {
			continue
		}
		brow := rv.recon.Row(k)
		for j, bv := range brow {
			rv.vrow[j] += av * bv
		}
	}
	var lin, dot float64
	for o, y := range state {
		lin += y * rv.vrow[o] * rv.vrow[o]
		dot += y * rv.vrow[o]
	}
	v := lin - dot*dot/count
	if v < 0 {
		v = 0 // round-off guard: a variance is non-negative
	}
	return v
}

// VarianceStream streams the closed-form variance of each workload answer in
// query order, calling fn(i, variance) per query until fn returns false or
// the workload is exhausted. Unlike Variance it materializes nothing of size
// p×n — one workload row at a time is reconstructed through the workload's
// per-row view — so it answers workloads past the maxVarianceElems bound.
// Each streamed value is bit-identical to the corresponding Variance entry.
func (e *Estimator) VarianceStream(s Snapshot, fn func(i int, v float64) bool) error {
	if err := e.Check(s); err != nil {
		return err
	}
	rv, err := e.newRowVariancer()
	if err != nil {
		return err
	}
	if rv == nil {
		vars, err := e.Variance(s)
		if err != nil {
			return err
		}
		for i, v := range vars {
			if !fn(i, v) {
				return nil
			}
		}
		return nil
	}
	p := e.work.Queries()
	if s.count <= 0 {
		for i := 0; i < p; i++ {
			if !fn(i, 0) {
				return nil
			}
		}
		return nil
	}
	for i := 0; i < p; i++ {
		if !fn(i, rv.variance(i, s.state, s.count)) {
			return nil
		}
	}
	return nil
}

// AnswerStream streams the full read path — unbiased answer, closed-form
// variance, and the confidence interval at the given two-sided level — one
// query row at a time, calling fn per row in query order until fn returns
// false or the workload is exhausted. The answers are the same values (bit
// for bit) Answers returns; the variances are streamed through the
// workload's per-row view, so a workload whose variance materialization
// exceeds the maxVarianceElems bound streams fine.
func (e *Estimator) AnswerStream(s Snapshot, level float64, fn func(QueryAnswer) bool) error {
	if math.IsNaN(level) || level <= 0 || level >= 1 {
		return fmt.Errorf("ldp: confidence level %v outside (0, 1)", level)
	}
	answers, err := e.Answers(s)
	if err != nil {
		return err
	}
	z := math.Sqrt2 * math.Erfinv(level)
	return e.VarianceStream(s, func(i int, v float64) bool {
		half := z * math.Sqrt(v)
		a := answers[i]
		return fn(QueryAnswer{Index: i, Answer: a, Variance: v, CI: Interval{Low: a - half, High: a + half}})
	})
}

// ConfidenceIntervals returns per-query normal-approximation confidence
// intervals at the given two-sided level (e.g. 0.95), centered on the
// unbiased answers with half-width z·σ from the mechanism's closed-form
// variance (Variance). The normal approximation is justified by the CLT:
// every answer is a sum of N independent per-user contributions.
func (e *Estimator) ConfidenceIntervals(s Snapshot, level float64) ([]Interval, error) {
	if math.IsNaN(level) || level <= 0 || level >= 1 {
		return nil, fmt.Errorf("ldp: confidence level %v outside (0, 1)", level)
	}
	answers, err := e.Answers(s)
	if err != nil {
		return nil, err
	}
	vars, err := e.Variance(s)
	if err != nil {
		return nil, err
	}
	z := math.Sqrt2 * math.Erfinv(level)
	out := make([]Interval, len(answers))
	for i, a := range answers {
		half := z * math.Sqrt(vars[i])
		out[i] = Interval{Low: a - half, High: a + half}
	}
	return out, nil
}
