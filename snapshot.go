package ldp

import (
	"errors"
	"fmt"

	"repro/internal/strategy"
	"repro/internal/transport"
)

// MechanismInfo identifies the mechanism configuration a snapshot was
// aggregated under: family name, domain, privacy budget, and — for strategy
// matrices, where the first three cannot distinguish two different channels —
// the StrategyDigest of the exact matrix. It is the same struct /healthz
// serves and every v2 snapshot frame carries, so one identity travels the
// whole read path.
//
// A zero field means "undeclared" (e.g. a snapshot decoded from a v1 frame):
// identity checks compare each field only when both sides declare it.
type MechanismInfo = transport.Info

// MechanismInfoOf derives the identity of an aggregator: strategy aggregators
// are fingerprinted by StrategyDigest, frequency oracles by (name, domain, ε)
// — which fully determines them, so no digest is needed. An aggregator
// exposing neither is identified by its domain alone.
func MechanismInfoOf(agg Aggregator) MechanismInfo {
	if agg == nil {
		return MechanismInfo{}
	}
	if sa, ok := agg.(interface{ Strategy() *strategy.Strategy }); ok {
		s := sa.Strategy()
		return MechanismInfo{Mechanism: "strategy", Domain: s.Domain(), Epsilon: s.Eps, Digest: StrategyDigest(s)}
	}
	info := MechanismInfo{Domain: agg.Domain()}
	if o, ok := agg.(interface {
		Name() string
		Epsilon() float64
	}); ok {
		info.Mechanism = o.Name()
		info.Epsilon = o.Epsilon()
	}
	return info
}

// infoMismatch compares two identities field-wise, each field only when both
// sides declare it (a zero value means undeclared). It returns a descriptive
// error on the first conflict — the digest check is what keeps two different
// strategy matrices with identical name/domain/ε from being conflated.
func infoMismatch(a, b MechanismInfo) error {
	if a.Domain != 0 && b.Domain != 0 && a.Domain != b.Domain {
		return fmt.Errorf("domain %d vs %d", a.Domain, b.Domain)
	}
	if a.Mechanism != "" && b.Mechanism != "" && a.Mechanism != b.Mechanism {
		return fmt.Errorf("mechanism %q vs %q", a.Mechanism, b.Mechanism)
	}
	if a.Epsilon > 0 && b.Epsilon > 0 && a.Epsilon != b.Epsilon {
		return fmt.Errorf("ε %v vs %v", a.Epsilon, b.Epsilon)
	}
	if a.Digest != "" && b.Digest != "" && a.Digest != b.Digest {
		return fmt.Errorf("mechanism digest %s vs %s", a.Digest, b.Digest)
	}
	return nil
}

// mergeInfo combines two compatible identities, preferring declared fields —
// so merging a v2 snapshot with a v1 one keeps the richer identity.
func mergeInfo(a, b MechanismInfo) MechanismInfo {
	out := a
	if out.Mechanism == "" {
		out.Mechanism = b.Mechanism
	}
	if out.Domain == 0 {
		out.Domain = b.Domain
	}
	if out.Epsilon == 0 {
		out.Epsilon = b.Epsilon
	}
	if out.Digest == "" {
		out.Digest = b.Digest
	}
	return out
}

// Snapshot is an immutable point-in-time view of a collector: the merged
// aggregation accumulator, the number of reports it reflects, the mechanism
// identity it was aggregated under, and the producing collector's monotonic
// snapshot epoch. Collector.Snap, Server.Snap, and RemoteCollector.Snap all
// produce one, an Estimator answers any of them, and two snapshots of the
// same mechanism Merge into one — which is all multi-collector fan-in is.
//
// The zero Snapshot is valid and empty. Snapshot values may be copied and
// shared freely across goroutines; no method mutates one.
type Snapshot struct {
	state []float64
	count float64
	epoch uint64
	info  MechanismInfo
}

// NewSnapshot assembles a snapshot from its parts (the state slice is
// copied). Collectors produce snapshots via Snap; this constructor exists for
// transports and tests that carry the parts separately.
func NewSnapshot(state []float64, count float64, epoch uint64, info MechanismInfo) Snapshot {
	st := make([]float64, len(state))
	copy(st, state)
	return Snapshot{state: st, count: count, epoch: epoch, info: info}
}

// State returns a copy of the merged accumulator.
func (s Snapshot) State() []float64 {
	out := make([]float64, len(s.state))
	copy(out, s.state)
	return out
}

// StateLen returns the accumulator width without copying.
func (s Snapshot) StateLen() int { return len(s.state) }

// Count returns the number of reports the snapshot reflects.
func (s Snapshot) Count() float64 { return s.count }

// Epoch returns the producing collector's monotonic snapshot sequence: it
// advances exactly when the observed state changes, so equal epochs from one
// collector mean identical snapshots. A merged snapshot carries the largest
// constituent epoch.
func (s Snapshot) Epoch() uint64 { return s.epoch }

// Info returns the mechanism identity the snapshot was aggregated under.
func (s Snapshot) Info() MechanismInfo { return s.info }

// Merge combines two snapshots of the same mechanism into the snapshot of
// the concatenated report streams — the accumulator contract makes that a
// plain element-wise sum, so fan-in across collector shards is a pure value
// operation. Merge rejects a mechanism-identity conflict (digest mismatch
// included) or an accumulator-width mismatch; reports randomized under one
// configuration must never be summed under another.
func (s Snapshot) Merge(other Snapshot) (Snapshot, error) {
	if err := infoMismatch(s.info, other.info); err != nil {
		return Snapshot{}, fmt.Errorf("ldp: cannot merge snapshots: %w", err)
	}
	if len(s.state) != len(other.state) {
		return Snapshot{}, fmt.Errorf("ldp: cannot merge snapshots: state width %d vs %d", len(s.state), len(other.state))
	}
	merged := make([]float64, len(s.state))
	for i := range merged {
		merged[i] = s.state[i] + other.state[i]
	}
	epoch := s.epoch
	if other.epoch > epoch {
		epoch = other.epoch
	}
	return Snapshot{
		state: merged,
		count: s.count + other.count,
		epoch: epoch,
		info:  mergeInfo(s.info, other.info),
	}, nil
}

// Diff is the inverse of Merge: it subtracts an older snapshot of the same
// mechanism from this one, yielding the snapshot of exactly the reports that
// arrived after the older cut — a sliding window as a pure value operation.
// Because accumulators are element-wise sums of per-report contributions, the
// subtraction is exact: for snapshots a ⊇ b of one collector,
// a.Diff(b).Merge(b) is bit-identical to a.
//
// Diff rejects a mechanism-identity conflict or width mismatch like Merge,
// and additionally refuses epoch inversion (other.Epoch() > s.Epoch()): a
// window's endpoints must be ordered, and subtracting a newer snapshot from
// an older one would fabricate negative report counts. The result keeps the
// newer endpoint's epoch.
func (s Snapshot) Diff(other Snapshot) (Snapshot, error) {
	if err := infoMismatch(s.info, other.info); err != nil {
		return Snapshot{}, fmt.Errorf("ldp: cannot diff snapshots: %w", err)
	}
	if len(s.state) != len(other.state) {
		return Snapshot{}, fmt.Errorf("ldp: cannot diff snapshots: state width %d vs %d", len(s.state), len(other.state))
	}
	if other.epoch > s.epoch {
		return Snapshot{}, fmt.Errorf("ldp: cannot diff snapshots: epoch inversion (older epoch %d > newer epoch %d)", other.epoch, s.epoch)
	}
	diff := make([]float64, len(s.state))
	for i := range diff {
		diff[i] = s.state[i] - other.state[i]
	}
	return Snapshot{
		state: diff,
		count: s.count - other.count,
		epoch: s.epoch,
		info:  mergeInfo(s.info, other.info),
	}, nil
}

// MergeSnapshots folds any number of snapshots into one via Merge. At least
// one snapshot is required.
func MergeSnapshots(snaps ...Snapshot) (Snapshot, error) {
	if len(snaps) == 0 {
		return Snapshot{}, errors.New("ldp: no snapshots to merge")
	}
	out := snaps[0]
	for _, s := range snaps[1:] {
		var err error
		if out, err = out.Merge(s); err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}
