package ldp

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/transport"
)

// DefaultRemoteBatch is the report count a RemoteCollector accumulates before
// shipping one frame. At the transport's ~10-byte-per-report framing this
// keeps frames around tens of kilobytes — large enough to amortize the HTTP
// round trip, small enough to bound client memory and per-frame loss.
const DefaultRemoteBatch = 4096

// RemoteCollector is the client half of a networked deployment: it speaks to
// a remote collector (cmd/ldpserve) over the transport's HTTP binding while
// presenting the same ingestion/read API as the in-process Collector, so the
// same driver code runs against either. Reports are buffered, carved into
// batches, and shipped in framed requests; each batch is applied atomically
// by the server and stamped with a random idempotency key, so a retry after
// a lost HTTP response cannot be absorbed twice. Snap fetches one consistent
// snapshot; estimates are reconstructed locally through the mechanism's
// Aggregator — the server never needs the workload, and (because
// accumulators are integer-valued and merging is exact) the estimates are
// bit-identical to an in-process pipeline fed the same reports.
//
// A RemoteCollector is safe for concurrent use; goroutines sharing one
// instance contend only on the report buffer, and distinct batches ship in
// parallel.
type RemoteCollector struct {
	client *transport.Client
	agg    Aggregator
	est    *Estimator
	info   MechanismInfo
	batch  int
	policy RetryPolicy

	// mu guards the buffers and is never held across a request. A batch is
	// popped from unsent under mu before it ships, so concurrent shippers
	// send distinct batches in parallel while each key still has at most one
	// request in flight (its batch is owned by exactly one shipper).
	mu     sync.Mutex
	buf    []Report     // ingested, not yet carved into a keyed batch
	unsent []keyedBatch // carved batches awaiting a shipper

	// lastEpoch/lastCount remember the highest snapshot epoch this client has
	// observed (under mu): a later Snap returning a smaller epoch is the
	// signature of a lossy server restart and surfaces as EpochRegressionError.
	lastEpoch uint64
	lastCount float64
}

// EpochRegressionError reports that the server's snapshot epoch moved
// backwards between two Snap calls on the same RemoteCollector. A collector's
// epoch is monotonic for its lifetime and durable recovery re-seeds it past
// every previously served value, so a regression means the server restarted
// and lost state (or was swapped for a different instance): estimates derived
// from the regressed snapshot would silently undercount every report absorbed
// before the restart. Detect it with errors.As.
type EpochRegressionError struct {
	// Prev and PrevCount are the last snapshot this client accepted.
	Prev      uint64
	PrevCount float64
	// Observed and ObservedCount are the regressed snapshot the server served.
	Observed      uint64
	ObservedCount float64
}

func (e *EpochRegressionError) Error() string {
	return fmt.Sprintf("snapshot epoch regressed from %d (count %g) to %d (count %g): the server appears to have restarted without recovering its state",
		e.Prev, e.PrevCount, e.Observed, e.ObservedCount)
}

// keyedBatch is one carved batch with the idempotency key that makes its
// retries safe: the key stays with the batch until the server acknowledges
// it, so a re-ship after a lost response replays the recorded answer instead
// of double-absorbing.
type keyedBatch struct {
	key     string
	reports []Report
}

// newIdemKey returns a fresh 16-byte random idempotency key, hex-encoded.
func newIdemKey() string {
	var b [16]byte
	// crypto/rand.Read cannot fail on the supported platforms (it panics
	// internally instead of returning), so the error is impossible here.
	_, _ = cryptorand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// RetryPolicy is the failure discipline a networked client applies per
// request: total attempts, jittered exponential backoff between them, and a
// per-attempt timeout. The Rand and Sleep fields are injectable so a test
// can pin the whole schedule deterministic; see DefaultRemoteRetryPolicy.
type RetryPolicy = retry.Policy

// DefaultRemoteRetryPolicy is the retry discipline a RemoteCollector ships
// and snapshots under when none is configured: four attempts backing off
// 100ms → 200ms → 400ms with ±50% jitter (capped at 2s), each attempt
// individually bounded at 30s. Idempotency keys make the retries safe; the
// jitter keeps a fleet of clients that failed together from retrying
// together.
func DefaultRemoteRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       4,
		InitialBackoff:    100 * time.Millisecond,
		MaxBackoff:        2 * time.Second,
		Multiplier:        2,
		Jitter:            0.5,
		PerAttemptTimeout: 30 * time.Second,
	}
}

// classifyTransportErr marks definitively answered requests non-retryable: a
// non-temporary status (the 4xx family) is a fact a retry cannot change,
// while network failures, timeouts, and 5xx/429 responses are weather.
func classifyTransportErr(err error) error {
	if err == nil {
		return nil
	}
	var se *transport.StatusError
	if errors.As(err, &se) && !se.Temporary() {
		return retry.Definitive(err)
	}
	return err
}

// RemoteOption configures a RemoteCollector.
type RemoteOption func(*RemoteCollector)

// WithRemoteBatch sets the report count per shipped frame (default
// DefaultRemoteBatch, capped at the transport's per-frame report limit).
func WithRemoteBatch(n int) RemoteOption {
	return func(rc *RemoteCollector) {
		if n > 0 {
			rc.batch = n
		}
	}
}

// WithRemoteHTTPClient substitutes the http.Client used for every request
// (timeouts, transport reuse, test doubles).
func WithRemoteHTTPClient(hc *http.Client) RemoteOption {
	return func(rc *RemoteCollector) {
		if hc != nil {
			rc.client.SetHTTPClient(hc)
		}
	}
}

// WithRemoteObserver installs a per-request latency observer on the
// underlying transport client: one callback per HTTP request with the
// operation name, wall time to response headers, HTTP status (0 when the
// request never got a response), and transport error. Callbacks run on the
// shipping goroutine — keep them cheap and concurrency-safe.
func WithRemoteObserver(obs transport.Observer) RemoteOption {
	return func(rc *RemoteCollector) {
		rc.client.SetObserver(obs)
	}
}

// WithRemoteRetryPolicy replaces the retry discipline (default
// DefaultRemoteRetryPolicy) applied to shipped batches and snapshot fetches.
// Tests pin MaxAttempts/backoff/Rand/Sleep for a deterministic schedule; a
// deployment that wants the old fail-fast behavior sets MaxAttempts to 1.
func WithRemoteRetryPolicy(p RetryPolicy) RemoteOption {
	return func(rc *RemoteCollector) {
		rc.policy = p
	}
}

// NewRemoteCollector prepares a client for the collector server at baseURL
// ("host:port" or a full http:// URL). The aggregator must match the
// mechanism the server was started with — Verify (or a /healthz check)
// confirms it.
func NewRemoteCollector(baseURL string, agg Aggregator, w Workload, opts ...RemoteOption) (*RemoteCollector, error) {
	est, err := NewEstimator(agg, w)
	if err != nil {
		return nil, err
	}
	tc, err := transport.NewClient(baseURL, nil)
	if err != nil {
		return nil, fmt.Errorf("ldp: %w", err)
	}
	rc := &RemoteCollector{client: tc, agg: agg, est: est, info: est.Info(),
		batch: DefaultRemoteBatch, policy: DefaultRemoteRetryPolicy()}
	for _, o := range opts {
		o(rc)
	}
	if rc.batch > transport.MaxBatchReports {
		rc.batch = transport.MaxBatchReports
	}
	return rc, nil
}

// Verify asks the server for its identity and rejects a mechanism mismatch —
// reports randomized under one configuration must not be aggregated under
// another. Each field is matched when both sides declare it: mechanism name,
// ε, and — for strategy matrices, where name/domain/ε cannot distinguish two
// different matrices — the StrategyDigest of the exact channel.
func (rc *RemoteCollector) Verify(ctx context.Context, mechanism string, eps float64, digest string) error {
	h, err := rc.client.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("ldp: remote collector unreachable: %w", err)
	}
	if h.Domain != rc.agg.Domain() {
		return fmt.Errorf("ldp: remote collector domain %d, local mechanism domain %d", h.Domain, rc.agg.Domain())
	}
	if err := infoMismatch(h.Info, MechanismInfo{Mechanism: mechanism, Epsilon: eps, Digest: digest}); err != nil {
		return fmt.Errorf("ldp: remote collector aggregates under a different mechanism configuration: %w", err)
	}
	return nil
}

// Ingest buffers one client report, shipping a frame when the batch size is
// reached. Call Flush before reading estimates.
func (rc *RemoteCollector) Ingest(ctx context.Context, r Report) error {
	return rc.IngestBatch(ctx, []Report{r})
}

// IngestBatch buffers a batch of reports, shipping full keyed batches as they
// accumulate. Validation happens server-side per frame, all-or-nothing. On a
// failed ship nothing is lost: a batch the server definitively rejected keeps
// only its unaccepted suffix, and a batch whose response was lost is retried
// under the same idempotency key — so a retried IngestBatch or Flush delivers
// every report exactly once.
func (rc *RemoteCollector) IngestBatch(ctx context.Context, reports []Report) error {
	rc.mu.Lock()
	rc.buf = append(rc.buf, reports...)
	rc.mu.Unlock()
	return rc.ship(ctx, false)
}

// Flush ships every buffered report. The pipeline is complete once Flush
// returns nil — a subsequent Snap sees all ingested reports. A batch a
// concurrent IngestBatch has already popped for shipping is that call's
// responsibility (it re-buffers on failure), so join ingestion goroutines
// before the final Flush, as with the in-process Collector.
func (rc *RemoteCollector) Flush(ctx context.Context) error {
	return rc.ship(ctx, true)
}

// carveLocked moves buffered reports into keyed batches: every full batch,
// plus (when all is set) the remainder. Caller holds mu. One compaction for
// all carved batches, so a large ingest stays linear in the buffered count.
func (rc *RemoteCollector) carveLocked(all bool) {
	off := 0
	for len(rc.buf)-off >= rc.batch {
		frame := make([]Report, rc.batch)
		copy(frame, rc.buf[off:])
		off += rc.batch
		rc.unsent = append(rc.unsent, keyedBatch{key: newIdemKey(), reports: frame})
	}
	if all && len(rc.buf) > off {
		frame := make([]Report, len(rc.buf)-off)
		copy(frame, rc.buf[off:])
		off = len(rc.buf)
		rc.unsent = append(rc.unsent, keyedBatch{key: newIdemKey(), reports: frame})
	}
	if off > 0 {
		rc.buf = rc.buf[:copy(rc.buf, rc.buf[off:])]
	}
}

// ship carves keyed batches and sends them until none remain or an error
// stops this shipper. Each iteration pops one batch under the lock, so
// concurrent callers ship distinct batches in parallel — the fleet pattern
// of many ingestion goroutines sharing one RemoteCollector keeps its
// concurrent POSTs.
//
// Each batch is driven through the retry policy: transient failures (network
// errors, lost responses, 5xx) back off with jitter and try again under the
// SAME idempotency key, so a retry of a request whose response was lost
// replays the recorded answer instead of a second absorb. A definitive
// response (4xx) stops the retries immediately: the server applied exactly
// the accepted prefix, so the unaccepted suffix is re-queued under a fresh
// key (the old key has the old response recorded against it). Only when the
// policy is exhausted does the batch return to the front of the queue — key
// intact — for a later Flush to continue exactly where this one stopped.
func (rc *RemoteCollector) ship(ctx context.Context, all bool) error {
	for {
		rc.mu.Lock()
		rc.carveLocked(all)
		if len(rc.unsent) == 0 {
			rc.mu.Unlock()
			return nil
		}
		b := rc.unsent[0]
		rc.unsent = rc.unsent[1:]
		rc.mu.Unlock()

		accepted := 0
		err := retry.Do(ctx, rc.policy, func(actx context.Context) error {
			a, perr := rc.client.PostReportsKeyed(actx, b.reports, b.key)
			accepted = a
			return classifyTransportErr(perr)
		})
		if err == nil {
			// Acknowledged in full (a 200 means every frame of the request
			// was absorbed — or already had been, under this key).
			continue
		}
		var se *transport.StatusError
		if errors.As(err, &se) && !se.Temporary() {
			// Definitive response: the server applied exactly the accepted
			// prefix and rejected the rest. Keep the suffix under a fresh key
			// (the old key now has this rejection recorded against it).
			if accepted < 0 || accepted > len(b.reports) {
				accepted = 0 // trust no hostile or nonsensical count
			}
			if accepted >= len(b.reports) {
				return fmt.Errorf("ldp: ship reports: %w", err)
			}
			b = keyedBatch{key: newIdemKey(), reports: b.reports[accepted:]}
		}
		// Return the unacknowledged batch to the front of the queue — with
		// its key intact when no definitive answer arrived (the response may
		// have been lost after an absorb), so the next retry stays idempotent
		// server-side.
		rc.mu.Lock()
		rc.unsent = append([]keyedBatch{b}, rc.unsent...)
		rc.mu.Unlock()
		return fmt.Errorf("ldp: ship reports: %w", err)
	}
}

// Health is a collector server's /healthz response: liveness, a consistent
// (count, snapshot epoch) pair, and the declared mechanism identity — enough
// to spot a stale or mismatched shard without pulling a full snapshot.
type Health = transport.Health

// Readyz asks the server's readiness probe: (true, "") for a shard that
// should receive traffic, (false, reason) for one that is alive but gated
// out (draining, recovering). Servers predating /readyz read as
// ready-while-alive. The error is non-nil only when the shard could not be
// reached at all.
func (rc *RemoteCollector) Readyz(ctx context.Context) (bool, string, error) {
	return rc.client.Readyz(ctx)
}

// Healthz fetches the server's health report.
func (rc *RemoteCollector) Healthz(ctx context.Context) (Health, error) {
	h, err := rc.client.Healthz(ctx)
	if err != nil {
		return Health{}, fmt.Errorf("ldp: %w", err)
	}
	return h, nil
}

// Count returns the number of reports the server has absorbed (buffered,
// unshipped reports are not included).
func (rc *RemoteCollector) Count(ctx context.Context) (float64, error) {
	h, err := rc.Healthz(ctx)
	if err != nil {
		return 0, err
	}
	return h.Count, nil
}

// Snap fetches one consistent Snapshot from the server: merged accumulator,
// report count, snapshot epoch, and the mechanism identity the server
// declared (cross-checked against the local mechanism — digest included —
// before the snapshot is accepted). Against an old server speaking v1 frames
// the identity gaps are filled from the local mechanism.
func (rc *RemoteCollector) Snap(ctx context.Context) (Snapshot, error) {
	var ts transport.Snapshot
	err := retry.Do(ctx, rc.policy, func(actx context.Context) error {
		s, serr := rc.client.Snap(actx)
		if serr == nil {
			ts = s
		}
		// A truncated or garbled frame reads as a decode error, not a status:
		// it is transient (the next fetch re-reads), so it retries too.
		return classifyTransportErr(serr)
	})
	if err != nil {
		return Snapshot{}, fmt.Errorf("ldp: fetch snapshot: %w", err)
	}
	if len(ts.State) != rc.agg.StateLen() {
		return Snapshot{}, fmt.Errorf("ldp: remote snapshot has %d state entries, local mechanism expects %d — mechanism mismatch", len(ts.State), rc.agg.StateLen())
	}
	if err := infoMismatch(rc.info, ts.Info); err != nil {
		return Snapshot{}, fmt.Errorf("ldp: remote snapshot aggregated under a different mechanism configuration: %w", err)
	}
	// The epoch must never move backwards across Snap calls: a collector's
	// epoch is monotonic and survives a durable restart, so a regression is
	// exactly the symptom of a lossy restart — reject the snapshot instead of
	// letting a consistent-looking undercount through. (A v1 server reports
	// epoch 0 always, which never regresses from itself.)
	rc.mu.Lock()
	if ts.Epoch < rc.lastEpoch {
		prev, prevCount := rc.lastEpoch, rc.lastCount
		rc.mu.Unlock()
		return Snapshot{}, fmt.Errorf("ldp: %w", &EpochRegressionError{
			Prev: prev, PrevCount: prevCount, Observed: ts.Epoch, ObservedCount: ts.Count,
		})
	}
	rc.lastEpoch, rc.lastCount = ts.Epoch, ts.Count
	rc.mu.Unlock()
	// ts.State is freshly decoded and exclusively ours — no defensive copy.
	return Snapshot{state: ts.State, count: ts.Count, epoch: ts.Epoch, info: mergeInfo(ts.Info, rc.info)}, nil
}

// SnapAt fetches the historical snapshot the server's epoch history retains
// for exactly the given epoch — bit-identical to what Snap served when that
// epoch was current. An epoch the server's retention ladder has coarsened
// away answers a definitive 404 (a *StatusError whose message names the
// retained range). A server that answers an exact request with a LOWER epoch
// has lost the retained history it advertised — the same lossy-restart
// signature Snap guards against — and is rejected with EpochRegressionError
// (Prev is the requested epoch). Historical reads never advance the
// regression high-water mark Snap maintains: reading the past must not make
// the present look regressed, or vice versa.
func (rc *RemoteCollector) SnapAt(ctx context.Context, epoch uint64) (Snapshot, error) {
	return rc.snapAt(ctx, epoch, false)
}

// SnapAtNearest is SnapAt with floor semantics: the server serves the newest
// retained epoch at or below the requested one (fleet members checkpoint on
// their own schedules, so an exact epoch rarely exists fleet-wide). The
// returned snapshot's epoch says what was actually served; a served epoch
// above the requested one is rejected.
func (rc *RemoteCollector) SnapAtNearest(ctx context.Context, epoch uint64) (Snapshot, error) {
	return rc.snapAt(ctx, epoch, true)
}

func (rc *RemoteCollector) snapAt(ctx context.Context, epoch uint64, nearest bool) (Snapshot, error) {
	var ts transport.Snapshot
	err := retry.Do(ctx, rc.policy, func(actx context.Context) error {
		s, serr := rc.client.SnapAt(actx, epoch, nearest)
		if serr == nil {
			ts = s
		}
		return classifyTransportErr(serr)
	})
	if err != nil {
		return Snapshot{}, fmt.Errorf("ldp: fetch snapshot at epoch %d: %w", epoch, err)
	}
	if len(ts.State) != rc.agg.StateLen() {
		return Snapshot{}, fmt.Errorf("ldp: remote snapshot has %d state entries, local mechanism expects %d — mechanism mismatch", len(ts.State), rc.agg.StateLen())
	}
	if err := infoMismatch(rc.info, ts.Info); err != nil {
		return Snapshot{}, fmt.Errorf("ldp: remote snapshot aggregated under a different mechanism configuration: %w", err)
	}
	if !nearest && ts.Epoch != epoch {
		if ts.Epoch < epoch {
			return Snapshot{}, fmt.Errorf("ldp: %w", &EpochRegressionError{
				Prev: epoch, Observed: ts.Epoch, ObservedCount: ts.Count,
			})
		}
		return Snapshot{}, fmt.Errorf("ldp: requested epoch %d, server served %d", epoch, ts.Epoch)
	}
	if nearest && ts.Epoch > epoch {
		return Snapshot{}, fmt.Errorf("ldp: requested epoch at or below %d, server served %d", epoch, ts.Epoch)
	}
	// Deliberately no rc.lastEpoch update: the high-water mark tracks the
	// live timeline only.
	return Snapshot{state: ts.State, count: ts.Count, epoch: ts.Epoch, info: mergeInfo(ts.Info, rc.info)}, nil
}

// Snapshot fetches the server's merged accumulator and report count.
//
// Deprecated: use Snap, which carries the mechanism identity and epoch the
// bare pair lacks.
func (rc *RemoteCollector) Snapshot(ctx context.Context) (state []float64, count float64, err error) {
	s, err := rc.Snap(ctx)
	if err != nil {
		return nil, 0, err
	}
	return s.state, s.count, nil
}

// DataEstimate fetches one snapshot and returns the unbiased estimate of the
// data vector.
//
// Deprecated: use an Estimator — NewEstimator(agg, w) then
// est.DataEstimate(snap) — which answers local, remote, and merged snapshots
// alike.
func (rc *RemoteCollector) DataEstimate(ctx context.Context) ([]float64, error) {
	s, err := rc.Snap(ctx)
	if err != nil {
		return nil, err
	}
	return rc.est.DataEstimate(s)
}

// Answers fetches one snapshot and returns unbiased workload estimates.
//
// Deprecated: use an Estimator — est.Answers(snap).
func (rc *RemoteCollector) Answers(ctx context.Context) ([]float64, error) {
	s, err := rc.Snap(ctx)
	if err != nil {
		return nil, err
	}
	return rc.est.Answers(s)
}

// ConsistentAnswers fetches one snapshot and returns WNNLS-post-processed
// workload estimates, exactly as Collector.ConsistentAnswers would for the
// same reports.
//
// Deprecated: use an Estimator — est.ConsistentAnswers(snap).
func (rc *RemoteCollector) ConsistentAnswers(ctx context.Context) ([]float64, error) {
	s, err := rc.Snap(ctx)
	if err != nil {
		return nil, err
	}
	return rc.est.ConsistentAnswers(s)
}

// collectorBackend adapts a Collector to the transport's Backend contract by
// unpacking its Snapshot value. The pool backs the /query endpoint: cached
// estimators survive across requests, so only the first query for a workload
// pays variance-model construction.
type collectorBackend struct {
	c    *Collector
	pool *EstimatorPool
}

func (b collectorBackend) IngestBatch(reports []Report) error { return b.c.IngestBatch(reports) }

// IngestBatchKeyed satisfies transport.KeyedBackend: a durable collector logs
// the idempotency key with the batch, closing the crash-restart replay hole.
func (b collectorBackend) IngestBatchKeyed(reports []Report, key string) error {
	return b.c.IngestBatchKeyed(reports, key)
}

func (b collectorBackend) SnapshotEpoch() ([]float64, float64, uint64) {
	return b.c.snapshot()
}

func (b collectorBackend) CountEpoch() (float64, uint64) {
	return b.c.countEpoch()
}

// Durability satisfies transport.DurableBackend so /healthz reports recovery
// status and WAL lag for a durable collector.
func (b collectorBackend) Durability() (transport.DurabilityHealth, bool) {
	return b.c.Durability()
}

// SnapshotAt satisfies transport.HistoryBackend so GET /snapshot?epoch= serves
// retained history; an in-memory collector reads as "nothing retained" (404).
func (b collectorBackend) SnapshotAt(epoch uint64, nearest bool) (transport.Snapshot, error) {
	return b.c.historySnapshotAt(epoch, nearest)
}

// CollectorService is a served collector endpoint plus its lifecycle
// controls: the HTTP handler cmd/ldpserve binds, a Drain switch that flips
// ingest to 503 + not-ready while reads stay alive, and a SetReady gate for
// transient not-ready phases (recovery, rebalancing) a router's health
// probes should see.
type CollectorService struct {
	ts *transport.Server
}

// ServiceOption configures a served tier's observability (CollectorService
// and FleetServer alike).
type ServiceOption func(*serviceConfig)

type serviceConfig struct {
	logger *slog.Logger
	slow   time.Duration
}

// WithServiceLogger sets the structured logger request lines (and their
// Ldp-Request-Id trace fields) are emitted through; nil keeps slog.Default.
func WithServiceLogger(l *slog.Logger) ServiceOption {
	return func(c *serviceConfig) { c.logger = l }
}

// WithSlowRequestThreshold sets the latency at or above which a request is
// logged at Warn instead of Debug (<= 0 keeps the 1s default).
func WithSlowRequestThreshold(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.slow = d }
}

// NewCollectorService binds an in-process Collector to the HTTP transport
// and returns the service handle. info describes the mechanism for /healthz
// and the snapshot frames; pass MechanismInfoOf(agg) unless the deployment
// has a reason to declare less.
//
// The service is fully instrumented: GET /metrics serves per-endpoint
// request counts and latency histograms, the collector's ingest and
// snapshot-cache counters, the estimator pool's cache stats, the WAL and
// checkpoint families for a durable collector, and the ldp_build_info
// identity gauge. Every request carries an Ldp-Request-Id through the
// structured request log.
func NewCollectorService(c *Collector, info transport.Info, opts ...ServiceOption) (*CollectorService, error) {
	if c == nil {
		return nil, errors.New("ldp: nil collector")
	}
	var cfg serviceConfig
	for _, o := range opts {
		o(&cfg)
	}
	reg := obs.NewRegistry()
	pool := NewEstimatorPool()
	s, err := transport.NewServer(collectorBackend{c: c, pool: pool}, info,
		transport.WithMetrics(reg),
		transport.WithComponent("collector"),
		transport.WithLogger(cfg.logger),
		transport.WithSlowRequest(cfg.slow),
		transport.WithVersion(BuildInfo().Version))
	if err != nil {
		return nil, fmt.Errorf("ldp: %w", err)
	}
	registerBuildInfo(reg)
	c.enableMetrics(reg)
	c.armDurabilityMetrics(reg)
	pool.enableMetrics(reg)
	// A durable collector's recovery proves which keyed batches were absorbed
	// before the restart; seeding them lets a client retry of a lost response
	// replay instead of double-absorbing.
	if keys := c.recoveredIdempotencyKeys(); len(keys) > 0 {
		s.SeedIdempotency(keys)
	}
	return &CollectorService{ts: s}, nil
}

// Metrics returns the service's registry — what GET /metrics serves — so an
// embedder (or a test) can read series or add families of its own.
func (s *CollectorService) Metrics() *obs.Registry { return s.ts.Metrics() }

// Handler returns the HTTP handler serving /reports, /snapshot, /healthz,
// and /readyz.
func (s *CollectorService) Handler() http.Handler { return s.ts.Handler() }

// Drain marks the service draining: POST /reports answers a retryable 503,
// /readyz flips to 503 so a router gates the shard out of membership, and
// /healthz plus /snapshot keep serving so the fan-in tier can pull the final
// state. Call before http.Server.Shutdown; Drain is one-way.
func (s *CollectorService) Drain() { s.ts.Drain() }

// SetReady declares a transient readiness state (false gates the shard out
// of router membership with the given reason while it stays alive). A
// draining service never reports ready again.
func (s *CollectorService) SetReady(ready bool, reason string) { s.ts.SetReady(ready, reason) }

// NewCollectorServer binds an in-process Collector to the HTTP transport and
// returns just the handler — NewCollectorService without the lifecycle
// controls, kept for embedders that never drain.
func NewCollectorServer(c *Collector, info transport.Info) (http.Handler, error) {
	s, err := NewCollectorService(c, info)
	if err != nil {
		return nil, err
	}
	return s.Handler(), nil
}

// ServerInfo describes a served mechanism for /healthz; it is the transport's
// Info re-exported so callers of NewCollectorServer need not import an
// internal package.
//
// Deprecated: use the equivalent MechanismInfo, the identity type snapshots
// carry.
type ServerInfo = transport.Info
