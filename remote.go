package ldp

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/postprocess"
	"repro/internal/transport"
)

// DefaultRemoteBatch is the report count a RemoteCollector accumulates before
// shipping one frame. At the transport's ~10-byte-per-report framing this
// keeps frames around tens of kilobytes — large enough to amortize the HTTP
// round trip, small enough to bound client memory and per-frame loss.
const DefaultRemoteBatch = 4096

// RemoteCollector is the client half of a networked deployment: it speaks to
// a remote collector (cmd/ldpserve) over the transport's HTTP binding while
// presenting the same ingestion/read API as the in-process Collector, so the
// same driver code runs against either. Reports are buffered and shipped in
// framed batches; each batch is applied atomically by the server. The read
// methods fetch one consistent snapshot and reconstruct estimates locally
// through the mechanism's Aggregator — the server never needs the workload,
// and (because accumulators are integer-valued and merging is exact) the
// estimates are bit-identical to an in-process pipeline fed the same
// reports.
//
// A RemoteCollector is safe for concurrent use; goroutines sharing one
// instance contend only on the report buffer.
type RemoteCollector struct {
	client *transport.Client
	agg    Aggregator
	work   Workload
	batch  int

	mu  sync.Mutex
	buf []Report
}

// RemoteOption configures a RemoteCollector.
type RemoteOption func(*RemoteCollector)

// WithRemoteBatch sets the report count per shipped frame (default
// DefaultRemoteBatch, capped at the transport's per-frame report limit).
func WithRemoteBatch(n int) RemoteOption {
	return func(rc *RemoteCollector) {
		if n > 0 {
			rc.batch = n
		}
	}
}

// WithRemoteHTTPClient substitutes the http.Client used for every request
// (timeouts, transport reuse, test doubles).
func WithRemoteHTTPClient(hc *http.Client) RemoteOption {
	return func(rc *RemoteCollector) {
		if hc != nil {
			rc.client.SetHTTPClient(hc)
		}
	}
}

// NewRemoteCollector prepares a client for the collector server at baseURL
// ("host:port" or a full http:// URL). The aggregator must match the
// mechanism the server was started with — Verify (or a /healthz check)
// confirms it.
func NewRemoteCollector(baseURL string, agg Aggregator, w Workload, opts ...RemoteOption) (*RemoteCollector, error) {
	if agg == nil {
		return nil, errors.New("ldp: nil aggregator")
	}
	if agg.Domain() != w.Domain() {
		return nil, fmt.Errorf("ldp: mechanism domain %d != workload domain %d", agg.Domain(), w.Domain())
	}
	tc, err := transport.NewClient(baseURL, nil)
	if err != nil {
		return nil, fmt.Errorf("ldp: %w", err)
	}
	rc := &RemoteCollector{client: tc, agg: agg, work: w, batch: DefaultRemoteBatch}
	for _, o := range opts {
		o(rc)
	}
	if rc.batch > transport.MaxBatchReports {
		rc.batch = transport.MaxBatchReports
	}
	return rc, nil
}

// Verify asks the server for its identity and rejects a mechanism mismatch —
// reports randomized under one configuration must not be aggregated under
// another. Each field is matched when both sides declare it: mechanism name,
// ε, and — for strategy matrices, where name/domain/ε cannot distinguish two
// different matrices — the StrategyDigest of the exact channel.
func (rc *RemoteCollector) Verify(ctx context.Context, mechanism string, eps float64, digest string) error {
	h, err := rc.client.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("ldp: remote collector unreachable: %w", err)
	}
	if h.Domain != rc.agg.Domain() {
		return fmt.Errorf("ldp: remote collector domain %d, local mechanism domain %d", h.Domain, rc.agg.Domain())
	}
	if mechanism != "" && h.Mechanism != "" && h.Mechanism != mechanism {
		return fmt.Errorf("ldp: remote collector runs mechanism %q, local mechanism is %q", h.Mechanism, mechanism)
	}
	if eps > 0 && h.Epsilon > 0 && h.Epsilon != eps {
		return fmt.Errorf("ldp: remote collector ε=%v, local mechanism ε=%v", h.Epsilon, eps)
	}
	if digest != "" && h.Digest != "" && h.Digest != digest {
		return fmt.Errorf("ldp: remote collector aggregates under a different mechanism configuration (digest %s, local %s)", h.Digest, digest)
	}
	return nil
}

// Ingest buffers one client report, shipping a frame when the batch size is
// reached. Call Flush before reading estimates.
func (rc *RemoteCollector) Ingest(ctx context.Context, r Report) error {
	return rc.IngestBatch(ctx, []Report{r})
}

// IngestBatch buffers a batch of reports, shipping full frames as they
// accumulate. Validation happens server-side per frame, all-or-nothing. On a
// failed ship the unshipped reports (the failed frame included — the server
// applied none of it) return to the buffer, so a retried IngestBatch or
// Flush loses nothing.
func (rc *RemoteCollector) IngestBatch(ctx context.Context, reports []Report) error {
	rc.mu.Lock()
	rc.buf = append(rc.buf, reports...)
	var full [][]Report
	off := 0
	for len(rc.buf)-off >= rc.batch {
		frame := make([]Report, rc.batch)
		copy(frame, rc.buf[off:])
		off += rc.batch
		full = append(full, frame)
	}
	if off > 0 {
		// One compaction for all carved frames, so a large IngestBatch
		// stays linear in the buffered report count.
		rc.buf = rc.buf[:copy(rc.buf, rc.buf[off:])]
	}
	rc.mu.Unlock()
	for i, frame := range full {
		if accepted, err := rc.post(ctx, frame); err != nil {
			// Return everything the server did not apply to the buffer:
			// the unaccepted tail of this ship plus every later frame.
			rc.mu.Lock()
			rc.buf = append(rc.buf, frame[accepted:]...)
			for _, f := range full[i+1:] {
				rc.buf = append(rc.buf, f...)
			}
			rc.mu.Unlock()
			return err
		}
	}
	return nil
}

// Flush ships every buffered report. The pipeline is complete once Flush
// returns nil — a subsequent Snapshot sees all ingested reports.
func (rc *RemoteCollector) Flush(ctx context.Context) error {
	rc.mu.Lock()
	buf := rc.buf
	rc.buf = nil
	rc.mu.Unlock()
	for len(buf) > 0 {
		n := len(buf)
		if n > rc.batch {
			n = rc.batch
		}
		if accepted, err := rc.post(ctx, buf[:n]); err != nil {
			// Unshipped reports stay buffered so a retried Flush loses
			// nothing; what the server already accepted is not re-sent.
			rc.mu.Lock()
			rc.buf = append(rc.buf, buf[accepted:]...)
			rc.mu.Unlock()
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// post ships one batch and returns how many of its reports the server
// accepted (PostReports may split the batch into several frames; an error
// mid-stream leaves the earlier frames applied, and the accepted count
// says exactly how many reports that was).
func (rc *RemoteCollector) post(ctx context.Context, frame []Report) (int, error) {
	accepted, err := rc.client.PostReports(ctx, frame)
	if err != nil {
		if accepted < 0 || accepted > len(frame) {
			accepted = 0 // trust no hostile or nonsensical count
		}
		return accepted, fmt.Errorf("ldp: ship reports: %w", err)
	}
	return accepted, nil
}

// Count returns the number of reports the server has absorbed (buffered,
// unflushed reports are not included).
func (rc *RemoteCollector) Count(ctx context.Context) (float64, error) {
	h, err := rc.client.Healthz(ctx)
	if err != nil {
		return 0, fmt.Errorf("ldp: %w", err)
	}
	return h.Count, nil
}

// Snapshot fetches the server's merged accumulator and report count.
func (rc *RemoteCollector) Snapshot(ctx context.Context) (state []float64, count float64, err error) {
	state, count, err = rc.client.Snapshot(ctx)
	if err != nil {
		return nil, 0, fmt.Errorf("ldp: fetch snapshot: %w", err)
	}
	if len(state) != rc.agg.StateLen() {
		return nil, 0, fmt.Errorf("ldp: remote snapshot has %d state entries, local mechanism expects %d — mechanism mismatch", len(state), rc.agg.StateLen())
	}
	return state, count, nil
}

// DataEstimate fetches one snapshot and returns the unbiased estimate of the
// data vector.
func (rc *RemoteCollector) DataEstimate(ctx context.Context) ([]float64, error) {
	state, count, err := rc.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	return rc.agg.EstimateCounts(state, count), nil
}

// Answers fetches one snapshot and returns unbiased workload estimates.
func (rc *RemoteCollector) Answers(ctx context.Context) ([]float64, error) {
	xh, err := rc.DataEstimate(ctx)
	if err != nil {
		return nil, err
	}
	return rc.work.MatVec(xh), nil
}

// ConsistentAnswers fetches one snapshot and returns WNNLS-post-processed
// workload estimates, exactly as Collector.ConsistentAnswers would for the
// same reports.
func (rc *RemoteCollector) ConsistentAnswers(ctx context.Context) ([]float64, error) {
	state, count, err := rc.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	answers := rc.work.MatVec(rc.agg.EstimateCounts(state, count))
	res, err := postprocess.Run(rc.work, answers, postprocess.Options{TotalCount: count})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// NewCollectorServer binds an in-process Collector to the HTTP transport —
// the handler cmd/ldpserve serves, exposed for embedding a collector
// endpoint into an existing process. info describes the mechanism for
// /healthz.
func NewCollectorServer(c *Collector, info transport.Info) (http.Handler, error) {
	if c == nil {
		return nil, errors.New("ldp: nil collector")
	}
	s, err := transport.NewServer(c, info)
	if err != nil {
		return nil, fmt.Errorf("ldp: %w", err)
	}
	return s.Handler(), nil
}

// ServerInfo describes a served mechanism for /healthz; it is the transport's
// Info re-exported so callers of NewCollectorServer need not import an
// internal package.
type ServerInfo = transport.Info
