package ldp_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/obs"
)

var updateObsGolden = flag.Bool("update-golden", false, "rewrite the metrics catalog goldens")

// scrape fetches and parses a server's /metrics, returning both the raw text
// (for lint and golden catalogs) and the parsed samples.
func scrape(t *testing.T, baseURL string) (string, []obs.Sample) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return string(raw), samples
}

// familyCatalog reduces an exposition to its sorted "name kind" catalog —
// the stable surface a dashboard is built against.
func familyCatalog(text string) string {
	var fams []string
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fams = append(fams, rest)
		}
	}
	sort.Strings(fams)
	return strings.Join(fams, "\n") + "\n"
}

func checkCatalogGolden(t *testing.T, name, text string) {
	t.Helper()
	if problems := obs.Lint(text); len(problems) != 0 {
		t.Errorf("metric naming lint: %s", strings.Join(problems, "; "))
	}
	got := familyCatalog(text)
	path := filepath.Join("testdata", name)
	if *updateObsGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric family catalog drifted from %s — a dashboard-breaking change; update the golden deliberately if intended\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// The collector service's /metrics is a complete, lint-clean, golden-pinned
// catalog, and the core series move with real traffic: ingested report
// counts, ingest HTTP requests, WAL appends, and the build-info pin.
func TestCollectorServiceMetrics(t *testing.T) {
	const domain, total = 16, 60
	w := ldp.Histogram(domain)
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(domain, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, w, 0, ldp.WithDurability(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(svc.Handler())
	defer hs.Close()

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(10),
		ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < total; i++ {
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % domain}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rcol.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rcol.Snap(ctx); err != nil {
		t.Fatal(err)
	}

	text, samples := scrape(t, hs.URL)
	checkCatalogGolden(t, "metrics_catalog_collector.golden", text)

	for _, probe := range []struct {
		name, labels string
		want         float64
	}{
		{"ldp_collector_ingest_reports_total", "", total},
		{"ldp_collector_reports", "", total},
		{"ldp_build_info", "", 1},
	} {
		if got, ok := obs.SampleValue(samples, probe.name, probe.labels); !ok || got != probe.want {
			t.Errorf("%s = %v (found=%v), want %v", probe.name, got, ok, probe.want)
		}
	}
	// Moving series where the exact value is load-dependent: just non-zero.
	for _, name := range []string{
		"ldp_http_requests_total",
		"ldp_wal_append_duration_seconds_count",
		"ldp_wal_commit_bytes_count",
	} {
		if got, ok := obs.SampleValue(samples, name, ""); !ok || got <= 0 {
			t.Errorf("%s = %v (found=%v), want > 0", name, got, ok)
		}
	}
}

// The router's /metrics mirrors the same guarantees for the fan-in tier:
// lint-clean golden catalog, fleet membership gauges, and merge/forward
// counters that move with routed traffic.
func TestFleetServerMetrics(t *testing.T) {
	const domain, total = 16, 40
	_, fs, hs, _, agg, w := routerFixture(t, domain, 3)
	fs.Probe(context.Background()) // populate the probe-outcome and per-shard gauge families

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(8),
		ldp.WithRemoteHTTPClient(hs.Client()),
		ldp.WithRemoteRetryPolicy(fastRetryPolicy(2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < total; i++ {
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % domain}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rcol.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rcol.Snap(ctx); err != nil {
		t.Fatal(err)
	}

	text, samples := scrape(t, hs.URL)
	checkCatalogGolden(t, "metrics_catalog_router.golden", text)

	for _, probe := range []struct {
		name, labels string
		want         float64
	}{
		{"ldp_fleet_members", "", 3},
		{"ldp_fleet_ready_members", "", 3},
		{"ldp_fleet_probes_total", `outcome="ready"`, 3},
		{"ldp_fleet_shard_ready", "", 3},
		{"ldp_fleet_coverage_fresh", "", 3},
		{"ldp_fleet_merges_total", `outcome="complete"`, 1},
		{"ldp_build_info", "", 1},
	} {
		if got, ok := obs.SampleValue(samples, probe.name, probe.labels); !ok || got != probe.want {
			t.Errorf("%s{%s} = %v (found=%v), want %v", probe.name, probe.labels, got, ok, probe.want)
		}
	}
	if got, ok := obs.SampleValue(samples, "ldp_http_requests_total", `endpoint="reports"`); !ok || got <= 0 {
		t.Errorf(`ldp_http_requests_total{endpoint="reports"} = %v (found=%v), want > 0`, got, ok)
	}
}

// syncBuffer makes a bytes.Buffer safe as an slog sink under concurrent
// request handling.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// One trace id follows one ingest through every tier: set on the client's
// context, stamped on the wire by the transport, routed through the fleet
// forward, and logged by both the router's and the shard's request lines.
func TestRequestIDPropagatesClientRouterShard(t *testing.T) {
	const domain = 8
	w := ldp.Histogram(domain)
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(domain, 1.0))
	if err != nil {
		t.Fatal(err)
	}

	var shardLog, routerLog syncBuffer
	debugJSON := func(sink *syncBuffer) *slog.Logger {
		return slog.New(slog.NewJSONHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(agg),
		ldp.WithServiceLogger(debugJSON(&shardLog)))
	if err != nil {
		t.Fatal(err)
	}
	shardSrv := httptest.NewServer(svc.Handler())
	defer shardSrv.Close()

	fleet, err := ldp.NewFleet(agg, w, ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	ctx := context.Background()
	if err := fleet.Register(ctx, shardSrv.URL); err != nil {
		t.Fatal(err)
	}
	fs, err := ldp.NewFleetServer(fleet, ldp.WithServiceLogger(debugJSON(&routerLog)))
	if err != nil {
		t.Fatal(err)
	}
	routerSrv := httptest.NewServer(fs.Handler())
	defer routerSrv.Close()

	rcol, err := ldp.NewRemoteCollector(routerSrv.URL, agg, w, ldp.WithRemoteBatch(4),
		ldp.WithRemoteHTTPClient(routerSrv.Client()),
		ldp.WithRemoteRetryPolicy(fastRetryPolicy(2, nil)))
	if err != nil {
		t.Fatal(err)
	}

	const traceID = "deadbeefcafe0042"
	tctx := obs.WithRequestID(ctx, traceID)
	for i := 0; i < 4; i++ {
		if err := rcol.Ingest(tctx, ldp.Report{Index: i % domain}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rcol.Flush(tctx); err != nil {
		t.Fatal(err)
	}

	want := fmt.Sprintf("%q:%q", "request_id", traceID)
	for _, tier := range []struct {
		name string
		log  *syncBuffer
	}{{"router", &routerLog}, {"shard", &shardLog}} {
		if !strings.Contains(tier.log.String(), want) {
			t.Errorf("%s log has no request line carrying the client's trace id %s:\n%s",
				tier.name, traceID, tier.log.String())
		}
	}
}
