// Regression tests for the pool's resource bounds and the snapshot-pinned
// answer cache: WithPoolMaxEntries must evict in LRU order and never break
// singleflight for an evicted key; WithPoolCacheGCBudget must keep the
// strategy cache directory inside its byte budget (newest entry always
// surviving); and AnswerBatch's cached answers must be dropped the moment
// the observed snapshot advances.
package ldp_test

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

func lruPoolAgg(t *testing.T, n int) ldp.Aggregator {
	t.Helper()
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(n, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// TestPoolMaxEntriesEvictionOrder pins the eviction order: with a bound of
// two, the least-recently-used entry — not the least-recently-built — is the
// one that goes.
func TestPoolMaxEntriesEvictionOrder(t *testing.T) {
	const n = 8
	pool := ldp.NewEstimatorPool(ldp.WithPoolMaxEntries(2))
	agg := lruPoolAgg(t, n)
	wA, wB, wC := ldp.Histogram(n), ldp.Prefix(n), ldp.AllRange(n)

	for _, w := range []ldp.Workload{wA, wB} {
		if _, err := pool.Estimator(agg, w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.Estimator(agg, wA); err != nil { // touch A: B is now LRU
		t.Fatal(err)
	}
	if _, err := pool.Estimator(agg, wC); err != nil { // third key: evicts B
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.EstimatorBuilds != 3 || st.EstimatorEvictions != 1 {
		t.Fatalf("after eviction: builds=%d evictions=%d, want 3 and 1", st.EstimatorBuilds, st.EstimatorEvictions)
	}
	// A was touched, so it must still be cached; B must rebuild.
	if _, err := pool.Estimator(agg, wA); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats(); got.EstimatorBuilds != 3 {
		t.Fatalf("touched entry was evicted: builds went %d → %d", st.EstimatorBuilds, got.EstimatorBuilds)
	}
	if _, err := pool.Estimator(agg, wB); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats(); got.EstimatorBuilds != 4 {
		t.Fatalf("LRU entry was not evicted: builds=%d, want 4 (B rebuilt)", got.EstimatorBuilds)
	}
}

// TestPoolSingleflightAfterEvict: resolving an evicted key concurrently must
// still build exactly once — eviction resets the cache, not the discipline.
func TestPoolSingleflightAfterEvict(t *testing.T) {
	const n = 8
	pool := ldp.NewEstimatorPool(ldp.WithPoolMaxEntries(1))
	agg := lruPoolAgg(t, n)
	wA, wB := ldp.Histogram(n), ldp.Prefix(n)

	if _, err := pool.Estimator(agg, wA); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Estimator(agg, wB); err != nil { // bound 1: evicts A
		t.Fatal(err)
	}
	if st := pool.Stats(); st.EstimatorEvictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.EstimatorEvictions)
	}

	const racers = 8
	var wg sync.WaitGroup
	ests := make([]*ldp.Estimator, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, err := pool.Estimator(agg, wA)
			if err != nil {
				t.Error(err)
				return
			}
			ests[i] = est
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if ests[i] != ests[0] {
			t.Fatal("racers received different estimator instances")
		}
	}
	st := pool.Stats()
	if st.EstimatorBuilds != 3 { // A, B, A-again — racers singleflighted
		t.Fatalf("builds=%d, want 3: the evicted key rebuilt more than once", st.EstimatorBuilds)
	}
	if st.EstimatorHits != racers-1 {
		t.Fatalf("hits=%d, want %d", st.EstimatorHits, racers-1)
	}
}

// TestPoolCacheGCBudget: the persisted strategy directory stays inside its
// byte budget, oldest entries going first, the just-written entry immune.
func TestPoolCacheGCBudget(t *testing.T) {
	const n, eps = 8, 1.0
	dir := t.TempDir()
	ctx := context.Background()
	opts := []ldp.OptimizeOption{ldp.WithIterations(20), ldp.WithSeed(7)}

	// Learn one entry's size with an unbounded pool.
	probe := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir))
	if _, err := probe.Strategy(ctx, ldp.Histogram(n), eps, opts...); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.strategy"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one persisted entry, got %v (err %v)", entries, err)
	}
	fi, err := os.Stat(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	entrySize := fi.Size()

	// Budget for two entries; persist three. The first (oldest) must be
	// collected, the two youngest survive.
	pool := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir), ldp.WithPoolCacheGCBudget(2*entrySize+entrySize/2))
	for _, w := range []ldp.Workload{ldp.Prefix(n), ldp.AllRange(n)} {
		if _, err := pool.Strategy(ctx, w, eps, opts...); err != nil {
			t.Fatal(err)
		}
	}
	after, err := filepath.Glob(filepath.Join(dir, "*.strategy"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("directory holds %d entries after GC, want 2: %v", len(after), after)
	}
	for _, path := range after {
		if path == entries[0] {
			t.Fatalf("GC kept the oldest entry %s and removed a younger one", entries[0])
		}
	}
	if st := pool.Stats(); st.DiskGCRemoved != 1 {
		t.Fatalf("DiskGCRemoved=%d, want 1", st.DiskGCRemoved)
	}
	// The newest entry must survive even under an impossible budget.
	tiny := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir), ldp.WithPoolCacheGCBudget(1))
	if _, err := tiny.Strategy(ctx, ldp.Parity(3), eps, opts...); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.strategy"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("impossible budget left %d entries, want exactly the newest: %v", len(left), left)
	}
}
