package ldp_test

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// e2eMechanism is one mechanism family's protocol halves plus its transport
// identity (digest non-empty only for strategy matrices).
type e2eMechanism struct {
	rz     ldp.Randomizer
	agg    ldp.Aggregator
	digest string
}

// e2eMechanisms builds the four mechanism families at domain n, ε=1: a
// strategy matrix (randomized response — deterministic, no optimizer run)
// and the three frequency oracles.
func e2eMechanisms(t *testing.T, n int) map[string]e2eMechanism {
	t.Helper()
	out := make(map[string]e2eMechanism)
	s := benchfix.RRStrategy(n, 1.0)
	rz, err := ldp.NewRandomizer(s)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	out["strategy"] = e2eMechanism{rz, agg, ldp.StrategyDigest(s)}
	for _, name := range []string{"OUE", "OLH", "RAPPOR"} {
		o, err := ldp.OracleByName(name, n, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = e2eMechanism{o, o, ""}
	}
	return out
}

// startCollectorServer serves a fresh sharded collector for agg over a
// loopback HTTP listener — an in-test cmd/ldpserve.
func startCollectorServer(t *testing.T, agg ldp.Aggregator, w ldp.Workload, info ldp.ServerInfo) *httptest.Server {
	t.Helper()
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := ldp.NewCollectorServer(col, info)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(handler)
	t.Cleanup(hs.Close)
	return hs
}

// The acceptance criterion of the transport layer: the same seed through the
// remote pipeline (randomize → frames over HTTP → remote sharded collector →
// snapshot → local reconstruction) must produce estimates identical to the
// in-process pipeline, for every mechanism family. Accumulators are
// integer-valued and merging is exact, so "identical" means bit-for-bit, not
// within tolerance.
func TestRemotePipelineMatchesLocal(t *testing.T) {
	const n, users, seed = 16, 2000, 3
	w := ldp.Prefix(n)
	x := make([]float64, n)
	{
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < users; i++ {
			x[rng.Intn(n)]++
		}
	}
	for name, m := range e2eMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			// Randomize once; feed the identical reports to both pipelines.
			client, err := ldp.NewClient(m.rz)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 1))
			var reports []ldp.Report
			for u, cnt := range x {
				for j := 0; j < int(cnt); j++ {
					rep, err := client.Randomize(u, rng)
					if err != nil {
						t.Fatal(err)
					}
					reports = append(reports, rep)
				}
			}

			// Local pipeline: single-goroutine server.
			local, err := ldp.NewServer(m.agg, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := local.IngestBatch(reports); err != nil {
				t.Fatal(err)
			}

			// Remote pipeline: loopback ldpserve + RemoteCollector, with a
			// batch size that forces several frames.
			hs := startCollectorServer(t, m.agg, w, ldp.ServerInfo{
				Mechanism: name, Domain: m.agg.Domain(), Epsilon: m.rz.Epsilon(),
				Digest: m.digest,
			})
			rcol, err := ldp.NewRemoteCollector(hs.URL, m.agg, w, ldp.WithRemoteBatch(97),
				ldp.WithRemoteHTTPClient(hs.Client()))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if err := rcol.Verify(ctx, name, m.rz.Epsilon(), m.digest); err != nil {
				t.Fatal(err)
			}
			if err := rcol.IngestBatch(ctx, reports); err != nil {
				t.Fatal(err)
			}
			if err := rcol.Flush(ctx); err != nil {
				t.Fatal(err)
			}

			count, err := rcol.Count(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if count != float64(len(reports)) {
				t.Fatalf("remote count %v, want %d", count, len(reports))
			}
			remoteUnbiased, err := rcol.Answers(ctx)
			if err != nil {
				t.Fatal(err)
			}
			localUnbiased := local.Answers()
			for i := range localUnbiased {
				if remoteUnbiased[i] != localUnbiased[i] {
					t.Fatalf("unbiased[%d]: remote %v != local %v", i, remoteUnbiased[i], localUnbiased[i])
				}
			}
			remoteCons, err := rcol.ConsistentAnswers(ctx)
			if err != nil {
				t.Fatal(err)
			}
			localCons, err := local.ConsistentAnswers()
			if err != nil {
				t.Fatal(err)
			}
			for i := range localCons {
				if remoteCons[i] != localCons[i] {
					t.Fatalf("consistent[%d]: remote %v != local %v", i, remoteCons[i], localCons[i])
				}
			}
		})
	}
}

// Two different strategy matrices can share name ("strategy"), domain, and
// declared ε — only the digest tells them apart. Verify must reject the
// mismatch at the handshake, before a single report poisons the shared
// accumulator.
func TestVerifyRejectsStrategyDigestMismatch(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	served := benchfix.RRStrategy(n, 1.0)
	other := benchfix.RRStrategy(n, 1.0)
	// Same shape, same ε, different channel: nudge two entries of one
	// column, preserving the column sum so the matrix stays a valid
	// strategy.
	d := 0.1 / float64(n)
	other.Q.Set(0, 0, other.Q.At(0, 0)-d)
	other.Q.Set(1, 0, other.Q.At(1, 0)+d)
	if ldp.StrategyDigest(served) == ldp.StrategyDigest(other) {
		t.Fatal("distinct matrices produced one digest")
	}
	agg, err := ldp.NewAggregator(served)
	if err != nil {
		t.Fatal(err)
	}
	hs := startCollectorServer(t, agg, w, ldp.ServerInfo{
		Mechanism: "strategy", Domain: n, Epsilon: 1, Digest: ldp.StrategyDigest(served),
	})
	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rcol.Verify(ctx, "strategy", 1, ldp.StrategyDigest(other)); err == nil {
		t.Fatal("client with a different strategy matrix passed the handshake")
	}
	if err := rcol.Verify(ctx, "strategy", 1, ldp.StrategyDigest(served)); err != nil {
		t.Fatalf("matching strategy rejected: %v", err)
	}
}

// A failed ship must lose nothing: reports the server did not accept return
// to the client buffer, and a retried Flush delivers exactly the full set —
// no loss, no duplicates — even when the failure interleaves with further
// ingestion.
func TestRemoteCollectorRetainsReportsOnFailure(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := ldp.NewCollectorServer(col, ldp.ServerInfo{Domain: n})
	if err != nil {
		t.Fatal(err)
	}
	// Fail every other POST /reports before it reaches the collector. The
	// toggle is atomic: handlers usually serialize on one keep-alive
	// connection, but a reconnect mid-test would run them concurrently.
	var failSeq atomic.Int64
	outer := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodPost {
			if failSeq.Add(1)%2 == 1 {
				http.Error(rw, "injected outage", http.StatusBadGateway)
				return
			}
		}
		inner.ServeHTTP(rw, req)
	})
	hs := httptest.NewServer(outer)
	t.Cleanup(hs.Close)

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(10),
		ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const total = 95
	for i := 0; i < total; i++ {
		// Errors are expected on the outage requests; the contract is that
		// the reports survive in the buffer for the next attempt.
		_ = rcol.Ingest(ctx, ldp.Report{Index: i % n})
	}
	for attempt := 0; attempt < 2*total; attempt++ {
		if err := rcol.Flush(ctx); err == nil {
			break
		}
	}
	state, count, err := rcol.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != total {
		t.Fatalf("server holds %v reports after retries, want exactly %d", count, total)
	}
	var mass float64
	for _, v := range state {
		mass += v
	}
	if mass != total {
		t.Fatalf("accumulator mass %v, want %d (loss or duplication)", mass, total)
	}
}

// TestTransportConcurrentClients is the loopback race test: 8 clients stream
// framed batches into one served collector concurrently; the resulting
// snapshot must equal a single-threaded ingest of the same reports. Run
// under -race in CI, this exercises the full locking story — sharded ingest,
// atomic counters, and the snapshot cache — across real HTTP handler
// goroutines.
func TestTransportConcurrentClients(t *testing.T) {
	const n, clients, perClient = 32, 8, 1500
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	rz, err := ldp.NewRandomizer(s)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-randomize every client's reports so the concurrent phase is pure
	// transport + collector.
	all := make([][]ldp.Report, clients)
	rng := rand.New(rand.NewSource(9))
	for c := range all {
		all[c] = make([]ldp.Report, perClient)
		for i := range all[c] {
			rep, err := rz.Randomize(rng.Intn(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			all[c][i] = rep
		}
	}

	hs := startCollectorServer(t, agg, w, ldp.ServerInfo{Mechanism: "strategy", Domain: n, Epsilon: 1})
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(reports []ldp.Report) {
			defer wg.Done()
			rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(64),
				ldp.WithRemoteHTTPClient(hs.Client()))
			if err != nil {
				errs <- err
				return
			}
			ctx := context.Background()
			// Interleave snapshot reads with ingestion so cache
			// invalidation races with writers.
			for i := 0; i < len(reports); i += 250 {
				end := i + 250
				if end > len(reports) {
					end = len(reports)
				}
				if err := rcol.IngestBatch(ctx, reports[i:end]); err != nil {
					errs <- err
					return
				}
				if _, _, err := rcol.Snapshot(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- rcol.Flush(ctx)
		}(all[c])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Reference: single-threaded ingest of the same reports.
	ref, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range all {
		if err := ref.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	state, count, err := rcol.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if count != clients*perClient {
		t.Fatalf("snapshot count %v, want %d", count, clients*perClient)
	}
	refState := ref.State()
	for i := range refState {
		if state[i] != refState[i] {
			t.Fatalf("state[%d]: concurrent %v != serial %v", i, state[i], refState[i])
		}
	}
}
