package ldp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/obs"
)

// Version is the build's release stamp, injected at link time:
//
//	go build -ldflags "-X repro.Version=v1.4.0" ./cmd/...
//
// Left empty, BuildInfo falls back to the module version and VCS facts Go
// embeds via debug.ReadBuildInfo, and finally to "(devel)". Every cmd binary
// surfaces it behind -version; servers expose it in /healthz and as the
// ldp_build_info metric.
var Version string

// Build describes the running binary: the resolved version plus the
// toolchain and VCS facts worth echoing in health endpoints and metrics.
type Build struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// BuildInfo resolves the binary's build identity once: the -ldflags Version
// when stamped, else the main module version, plus VCS revision/time/dirty
// facts when the binary was built inside a checkout.
func BuildInfo() Build {
	buildOnce.Do(func() {
		buildInfo = Build{Version: Version, GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			if buildInfo.Version == "" {
				buildInfo.Version = "(devel)"
			}
			return
		}
		if buildInfo.Version == "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
		if buildInfo.Version == "" {
			buildInfo.Version = "(devel)"
		}
	})
	return buildInfo
}

// registerBuildInfo pins the binary's identity as the conventional
// ldp_build_info gauge: constant 1, identity in the labels, so a fleet
// dashboard can group shards by the build they run.
func registerBuildInfo(reg *obs.Registry) {
	b := BuildInfo()
	reg.GaugeVec("ldp_build_info",
		"Build identity of the serving binary; value is always 1, the identity is in the labels.",
		"version", "go_version", "revision").With(b.Version, b.GoVersion, b.Revision).Set(1)
}

// VersionString renders the one-line identity the cmd binaries print for
// -version: version, Go toolchain, and a short revision when known.
func VersionString() string {
	b := BuildInfo()
	s := fmt.Sprintf("%s %s", b.Version, b.GoVersion)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if b.Modified {
			rev += "-dirty"
		}
		s += " " + rev
	}
	return s
}
