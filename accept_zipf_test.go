// Zipfian statistical acceptance: the same end-to-end protocol check as
// TestStatisticalAcceptance, but over the load simulator's population shape —
// a zipf(s=1.1) histogram, heavy head and long thin tail — instead of the
// geometric fixture. The envelopes are the same closed forms (Theorem 3.4
// for the strategy mechanism, the Wang et al. constants for the oracles)
// evaluated on the zipfian counts, so this pins that every mechanism's
// variance model holds on the traffic shape the soak tier actually drives.
package ldp_test

import (
	"math"
	"sort"
	"testing"

	ldp "repro"
)

const zipfAcceptS = 1.1

// zipfAcceptData builds the fixed zipfian histogram: item v carries weight
// 1/(v+1)^s, scaled to acceptUsers and rounded largest-remainder so the
// integer counts sum exactly to acceptUsers — deterministic, no sampling.
func zipfAcceptData() []float64 {
	weights := make([]float64, acceptN)
	total := 0.0
	for v := range weights {
		weights[v] = 1.0 / math.Pow(float64(v+1), zipfAcceptS)
		total += weights[v]
	}
	x := make([]float64, acceptN)
	type rem struct {
		v    int
		frac float64
	}
	rems := make([]rem, acceptN)
	assigned := 0.0
	for v := range x {
		exact := float64(acceptUsers) * weights[v] / total
		x[v] = math.Floor(exact)
		assigned += x[v]
		rems[v] = rem{v, exact - x[v]}
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].v < rems[j].v // deterministic tie-break
	})
	for i := 0; i < int(float64(acceptUsers)-assigned); i++ {
		x[rems[i].v]++
	}
	return x
}

func TestStatisticalAcceptanceZipfian(t *testing.T) {
	x := zipfAcceptData()
	var total float64
	for _, v := range x {
		total += v
	}
	if total != acceptUsers {
		t.Fatalf("zipf fixture mass %v, want %d", total, acceptUsers)
	}
	if x[0] <= x[acceptN-1]*10 {
		t.Fatalf("fixture is not zipfian: head %v vs tail %v", x[0], x[acceptN-1])
	}
	w := ldp.Histogram(acceptN)
	for _, c := range acceptCases(t, x) {
		t.Run(c.name, func(t *testing.T) {
			est, err := ldp.SimulateProtocol(c.rz, c.agg, w, x, acceptSeed+1)
			if err != nil {
				t.Fatal(err)
			}
			cellBound := zSigma * c.cellSigma
			var tse, sum float64
			for v := range x {
				d := est[v] - x[v]
				tse += d * d
				sum += est[v]
				if math.Abs(d) > cellBound {
					t.Errorf("count[%d] estimate %.1f is %.1f off the truth %.0f — outside the %.1f envelope",
						v, est[v], d, x[v], cellBound)
				}
			}
			if tse > tseSlack*c.expectedTSE {
				t.Errorf("total squared error %.0f exceeds %.0f (%.0f expected × %.1f slack)",
					tse, tseSlack*c.expectedTSE, c.expectedTSE, tseSlack)
			}
			if math.Abs(sum-acceptUsers) > zSigma*math.Sqrt(float64(acceptN))*c.cellSigma {
				t.Errorf("estimated total %.1f drifts from the true %d users", sum, acceptUsers)
			}
			t.Logf("%s zipf(s=%.1f): TSE %.0f (expected %.0f), cell envelope ±%.1f",
				c.name, zipfAcceptS, tse, c.expectedTSE, cellBound)
		})
	}
}
