package ldp_test

import (
	"bytes"
	"encoding/gob"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	ldp "repro"
	"repro/internal/linalg"
	"repro/internal/strategy"
)

// goldenStrategy builds a fully deterministic 3×3 randomized-response
// strategy at ε=1 — every entry is an exact function of math.Exp(1), so the
// serialized bytes are reproducible.
func goldenStrategy() *ldp.Strategy {
	n := 3
	e := math.Exp(1)
	q := linalg.New(n, n)
	denom := e + float64(n) - 1
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u {
				q.Set(o, u, e/denom)
			} else {
				q.Set(o, u, 1/denom)
			}
		}
	}
	return strategy.New(q, 1.0)
}

// goldenFile regenerates the golden file from got when UPDATE_GOLDEN=1 is
// set, then returns the file's bytes.
//
// The golden files pin decode compatibility, not byte identity: a file
// written by any past version of this library must keep loading to exactly
// the same values. Byte-for-byte output equality is deliberately NOT
// asserted — encoding/gob allocates wire type IDs from a process-global
// registry in first-use order, so the same Save call emits different (but
// equivalent) bytes depending on which gob types the process touched
// earlier. The original byte-equality check here only passed while wire.go's
// structs happened to be the first gob users in the test binary, and broke
// the moment another test encoded anything.
func goldenFile(t *testing.T, name string, got []byte) []byte {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	return want
}

func TestWireStrategyGoldenRoundTrip(t *testing.T) {
	s := goldenStrategy()
	var buf bytes.Buffer
	if err := ldp.SaveStrategy(&buf, s); err != nil {
		t.Fatal(err)
	}
	golden := goldenFile(t, "strategy_v1.golden", buf.Bytes())

	// The pinned bytes (written by the version that introduced the format)
	// must load to exactly the strategy that produced them…
	loaded, err := ldp.LoadStrategy(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Eps != 1.0 || loaded.Domain() != 3 || loaded.Outputs() != 3 {
		t.Fatal("round-trip lost metadata")
	}
	for i, v := range loaded.Q.Data() {
		if v != s.Q.Data()[i] {
			t.Fatalf("entry %d: %v != %v", i, v, s.Q.Data()[i])
		}
	}
	// …and so must a freshly saved stream.
	fresh, err := ldp.LoadStrategy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fresh.Q.Data() {
		if v != s.Q.Data()[i] {
			t.Fatalf("fresh entry %d: %v != %v", i, v, s.Q.Data()[i])
		}
	}
}

func TestWireOracleGoldenRoundTrip(t *testing.T) {
	olh, err := ldp.NewOLH(32, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ldp.SaveOracle(&buf, olh); err != nil {
		t.Fatal(err)
	}
	golden := goldenFile(t, "oracle_v1.golden", buf.Bytes())

	loaded, err := ldp.LoadOracle(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "OLH" || loaded.Domain() != 32 || loaded.Epsilon() != 1.25 {
		t.Fatalf("round-trip lost metadata: %s n=%d eps=%v",
			loaded.Name(), loaded.Domain(), loaded.Epsilon())
	}
	// Every oracle kind round-trips.
	for _, mk := range []func(int, float64) (ldp.FrequencyOracle, error){
		ldp.NewOUE, ldp.NewRAPPOROracle,
	} {
		o, err := mk(16, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := ldp.SaveOracle(&b, o); err != nil {
			t.Fatal(err)
		}
		back, err := ldp.LoadOracle(&b)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name() != o.Name() || back.Domain() != 16 || back.Epsilon() != 0.5 {
			t.Fatalf("%s: round trip lost configuration", o.Name())
		}
	}
}

func TestWireRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	// Same header shape, future version.
	if err := enc.Encode(struct {
		Magic   string
		Version int
		Kind    string
	}{Magic: "LDPWIRE", Version: 99, Kind: "strategy"}); err != nil {
		t.Fatal(err)
	}
	_, err := ldp.LoadStrategy(&buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestWireRejectsKindConfusion(t *testing.T) {
	olh, err := ldp.NewOLH(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ldp.SaveOracle(&buf, olh); err != nil {
		t.Fatal(err)
	}
	if _, err := ldp.LoadStrategy(&buf); err == nil {
		t.Fatal("oracle file accepted as a strategy")
	}
	var buf2 bytes.Buffer
	if err := ldp.SaveStrategy(&buf2, goldenStrategy()); err != nil {
		t.Fatal(err)
	}
	if _, err := ldp.LoadOracle(&buf2); err == nil {
		t.Fatal("strategy file accepted as an oracle")
	}
}

func TestWireRejectsGarbageAndLegacy(t *testing.T) {
	if _, err := ldp.LoadStrategy(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected decode error")
	}
	// The pre-versioning format was a bare gob of the payload struct; the
	// reader must reject it (no magic) rather than misparse it.
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(struct {
		Rows, Cols int
		Eps        float64
		Data       []float64
	}{Rows: 2, Cols: 2, Eps: 1, Data: []float64{0.5, 0.5, 0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	_, err := ldp.LoadStrategy(&legacy)
	if err == nil || !strings.Contains(err.Error(), "not an ldp wire file") {
		t.Fatalf("want not-a-wire-file error for legacy stream, got %v", err)
	}
}
