// Command ldpquery runs a workload (or a whole workload file) against a live
// collection deployment and prints per-query answers, variances, and
// confidence intervals.
//
// It speaks two shapes of deployment:
//
//   - -server URL: one POST /query against a shard (ldpserve) or a router
//     (ldprouter). The server's query engine resolves the workload, answers
//     over its current — for a router, merged — snapshot, and streams result
//     frames; rows are printed as they arrive, never materialized, so a
//     workload whose variance matrix would blow the in-memory bound still
//     answers. The client needs no mechanism configuration: the server owns
//     the reconstruction.
//
//   - -servers a,b,c: client-side fan-in. The command builds the mechanism
//     locally (-mech / -strategy / -oracle), registers the shards in a
//     health-gated fleet, pulls one merged snapshot, and answers every
//     requested workload through an EstimatorPool batch — workloads sharing
//     rows of W·B share their computation, and repeated runs against a
//     -cache-dir never re-pay strategy optimization.
//
// Workloads come from -workloads (comma-separated family names) and/or -file
// (one name per line, '#' comments):
//
//	ldpquery -server http://router:8090 -workloads Prefix -level 0.95
//	ldpquery -servers shardA:8089,shardB:8089 -mech oue -n 256 \
//	    -file workloads.txt -variance
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	ldp "repro"
	"repro/internal/mechflag"
	"repro/internal/transport"
)

func main() {
	server := flag.String("server", "", "query one endpoint (shard or router) over POST /query")
	servers := flag.String("servers", "", "comma-separated shard URLs for client-side fan-in (requires a mechanism)")
	mech := flag.String("mech", "", "mechanism for fan-in mode: oue, olh, rappor")
	n := flag.Int("n", 64, "domain size (fan-in mode with -mech)")
	eps := flag.Float64("eps", 1.0, "privacy budget ε (fan-in mode with -mech)")
	stratPath := flag.String("strategy", "", "use a strategy wire file (fan-in mode)")
	oraclePath := flag.String("oracle", "", "use an oracle wire file (fan-in mode)")
	workloads := flag.String("workloads", "", "comma-separated workload family names")
	file := flag.String("file", "", "workload file: one family name per line, '#' comments")
	level := flag.Float64("level", 0, "two-sided confidence level in (0,1); adds CI columns")
	variance := flag.Bool("variance", false, "add the per-query variance column")
	checkDigest := flag.Bool("check-digest", true, "send the canonical workload digest so the server proves it resolved the same workload (server mode)")
	head := flag.Int("head", 0, "print only the first N rows per workload (0 = all)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout")
	cacheDir := flag.String("cache-dir", "", "estimator-pool strategy cache directory (fan-in mode)")
	asOf := flag.Uint64("as-of", 0, "answer over the shards' retained history at this epoch instead of live state (fan-in mode); each shard serves its newest retained epoch at or below the bound")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpquery " + ldp.VersionString())
		return
	}

	names, err := workloadNames(*workloads, *file)
	if err != nil {
		fatal(err)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no workloads requested: set -workloads and/or -file"))
	}
	if (*server == "") == (*servers == "") {
		fatal(fmt.Errorf("set exactly one of -server (remote query) or -servers (client-side fan-in)"))
	}
	if *asOf != 0 && *server != "" {
		fatal(fmt.Errorf("-as-of needs the fan-in mode (-servers): POST /query always answers over live state"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *server != "" {
		err = queryServer(ctx, os.Stdout, *server, names, *level, *variance, *checkDigest, *head)
	} else {
		err = queryFanIn(ctx, os.Stdout, *servers, names, queryMech{*mech, *n, *eps, *stratPath, *oraclePath}, *level, *variance, *head, *cacheDir, *asOf)
	}
	if err != nil {
		fatal(err)
	}
}

// workloadNames merges the -workloads list with the -file lines.
func workloadNames(csv, path string) ([]string, error) {
	var names []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			names = append(names, s)
		}
	}
	if path == "" {
		return names, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return names, sc.Err()
}

// queryServer answers each workload with one POST /query, printing rows as
// the result frames stream in.
func queryServer(ctx context.Context, out io.Writer, server string, names []string, level float64, variance, checkDigest bool, head int) error {
	c, err := transport.NewClient(server, nil)
	if err != nil {
		return err
	}
	for _, name := range names {
		req := transport.QueryRequest{Workload: name, Level: level, WantVariance: variance || level > 0, WantCI: level > 0}
		if checkDigest {
			// Resolving the workload locally needs the domain; ask the server.
			h, err := c.Healthz(ctx)
			if err != nil {
				return err
			}
			w, err := ldp.WorkloadByName(name, h.Domain)
			if err != nil {
				return err
			}
			req.Domain = h.Domain
			req.Digest = ldp.WorkloadDigest(w)
		}
		printed := 0
		info, err := c.PostQuery(ctx, req, func(row transport.QueryRow) bool {
			if head > 0 && printed >= head {
				return false
			}
			printed++
			printRow(out, row, req.WantVariance, req.WantCI)
			return true
		})
		if err != nil {
			return fmt.Errorf("workload %s: %w", name, err)
		}
		fmt.Fprintf(out, "# %s: %d queries over %.0f reports (epoch %d)\n", name, info.TotalRows, info.Count, info.Epoch)
	}
	return nil
}

// queryMech carries the fan-in mode's mechanism flags.
type queryMech struct {
	mech       string
	n          int
	eps        float64
	strategy   string
	oraclePath string
}

// queryFanIn merges the shards' snapshots client-side and answers every
// workload through one EstimatorPool batch over the merged snapshot.
func queryFanIn(ctx context.Context, out io.Writer, servers string, names []string, qm queryMech, level float64, variance bool, head int, cacheDir string, asOf uint64) error {
	agg, err := mechflag.Build(qm.mech, qm.n, qm.eps, qm.strategy, qm.oraclePath)
	if err != nil {
		return err
	}
	ws := make([]ldp.Workload, len(names))
	for i, name := range names {
		if ws[i], err = ldp.WorkloadByName(name, agg.Domain()); err != nil {
			return err
		}
	}
	// ws[0] seeds the fleet's estimator; the pool below answers all of them.
	fleet, err := ldp.NewFleet(agg, ws[0])
	if err != nil {
		return err
	}
	for _, ep := range strings.Split(servers, ",") {
		if ep = strings.TrimSpace(ep); ep == "" {
			continue
		}
		if err := fleet.Register(ctx, ep); err != nil {
			return err
		}
	}
	var (
		snap ldp.Snapshot
		cov  ldp.Coverage
	)
	if asOf > 0 {
		// Historical read: each shard serves its newest retained epoch at or
		// below the bound, so the merge is the fleet's state as of that epoch.
		snap, cov, err = fleet.SnapAt(ctx, asOf)
	} else {
		snap, cov, err = fleet.Snap(ctx)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# coverage: %s\n", cov)
	var opts []ldp.PoolOption
	if cacheDir != "" {
		opts = append(opts, ldp.WithPoolCacheDir(cacheDir))
	}
	pool := ldp.NewEstimatorPool(opts...)
	var batchOpts []ldp.BatchOption
	withVar := variance || level > 0
	if withVar {
		batchOpts = append(batchOpts, ldp.WithBatchVariance())
	}
	answers, err := pool.AnswerBatch(agg, snap, ws, batchOpts...)
	if err != nil {
		return err
	}
	z := math.Sqrt2 * math.Erfinv(level)
	for bi, ba := range answers {
		rows := len(ba.Answers)
		for i := 0; i < rows; i++ {
			if head > 0 && i >= head {
				break
			}
			row := transport.QueryRow{Index: i, Answer: ba.Answers[i]}
			if ba.Variance != nil {
				row.Variance = ba.Variance[i]
			}
			if level > 0 && ba.Variance != nil {
				half := z * math.Sqrt(row.Variance)
				row.Low, row.High = row.Answer-half, row.Answer+half
			}
			printRow(out, row, withVar, level > 0)
		}
		fmt.Fprintf(out, "# %s: %d queries over %.0f reports (epoch %d)\n", names[bi], rows, snap.Count(), snap.Epoch())
	}
	return nil
}

func printRow(out io.Writer, row transport.QueryRow, withVar, withCI bool) {
	switch {
	case withCI:
		fmt.Fprintf(out, "%d\t%.6g\t%.6g\t[%.6g, %.6g]\n", row.Index, row.Answer, row.Variance, row.Low, row.High)
	case withVar:
		fmt.Fprintf(out, "%d\t%.6g\t%.6g\n", row.Index, row.Answer, row.Variance)
	default:
		fmt.Fprintf(out, "%d\t%.6g\n", row.Index, row.Answer)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpquery: %v\n", err)
	os.Exit(1)
}
