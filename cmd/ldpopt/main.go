// Command ldpopt optimizes a strategy matrix for a workload offline and
// saves it to a file, so deployments can ship a precomputed strategy to
// clients (strategy optimization is a one-time cost; Section 6.6).
//
// Usage:
//
//	ldpopt -workload Prefix -n 256 -eps 1.0 -o prefix256.strategy
//	ldpopt -workload AllRange -n 64 -eps 0.5 -iters 1000 -o range.strategy
//
// The resulting file is loaded with ldp.LoadStrategy (see cmd/ldprun for a
// consumer).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	ldp "repro"
)

func main() {
	wname := flag.String("workload", "Prefix", "workload family (Histogram, Prefix, AllRange, AllMarginals, 3-WayMarginals, Parity)")
	n := flag.Int("n", 64, "domain size")
	eps := flag.Float64("eps", 1.0, "privacy budget ε")
	iters := flag.Int("iters", 500, "optimizer iterations")
	seed := flag.Int64("seed", 0, "random seed")
	outPath := flag.String("o", "", "output file (default <workload><n>.strategy)")
	alpha := flag.Float64("alpha", 0.01, "report sample complexity at this normalized variance")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpopt " + ldp.VersionString())
		return
	}

	w, err := ldp.WorkloadByName(*wname, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optimizing %s workload, n=%d, ε=%g ...\n", w.Name(), *n, *eps)
	start := time.Now()
	mech, err := ldp.Optimize(context.Background(), w, *eps,
		ldp.WithIterations(*iters), ldp.WithSeed(*seed))
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	sc, err := ldp.SampleComplexity(mech, w, *alpha)
	if err != nil {
		fatal(err)
	}
	lb, err := ldp.LowerBoundObjective(w, *eps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done in %s (%d iterations)\n", elapsed.Round(time.Millisecond), mech.Iterations)
	fmt.Printf("objective L(Q) = %.6g (SVD lower bound %.6g, ratio %.2f)\n",
		mech.Objective, lb, mech.Objective/lb)
	fmt.Printf("sample complexity at α=%g: %.4g users\n", *alpha, sc)

	// Baseline comparison.
	rr := ldp.RandomizedResponse(*n, *eps)
	if rrSC, err := ldp.SampleComplexity(rr, w, *alpha); err == nil {
		fmt.Printf("randomized response needs %.4g users (%.2fx more)\n", rrSC, rrSC/sc)
	}

	path := *outPath
	if path == "" {
		path = fmt.Sprintf("%s%d.strategy", w.Name(), *n)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := ldp.SaveStrategy(f, mech.Strategy()); err != nil {
		fatal(err)
	}
	fmt.Printf("strategy (%dx%d) written to %s\n", mech.Strategy().Outputs(), mech.Strategy().Domain(), path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpopt: %v\n", err)
	os.Exit(1)
}
