// Command ldpvalidate audits a saved strategy file: it verifies the ε-LDP
// constraints (Proposition 2.6), reports the tightest ε the matrix actually
// satisfies, and — given a workload — its variance and sample complexity.
// Deployments should run this on any strategy before shipping it to clients.
//
// Usage:
//
//	ldpvalidate -strategy prefix256.strategy
//	ldpvalidate -strategy prefix256.strategy -workload Prefix -alpha 0.01
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	ldp "repro"
)

func main() {
	path := flag.String("strategy", "", "strategy file written by ldpopt / ldp.SaveStrategy")
	wname := flag.String("workload", "", "optionally evaluate on this workload family")
	alpha := flag.Float64("alpha", 0.01, "sample-complexity target")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpvalidate " + ldp.VersionString())
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "ldpvalidate: -strategy is required")
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	s, err := ldp.LoadStrategy(f)
	if err != nil {
		// LoadStrategy already validates; surface the reason.
		fatal(err)
	}
	fmt.Printf("strategy: %d outputs × %d user types, declared ε = %g\n",
		s.Outputs(), s.Domain(), s.Eps)
	fmt.Printf("ε-LDP validation (Proposition 2.6): PASS\n")

	// Tightest ε actually satisfied: max over rows of log(max/min).
	tightest := 0.0
	for o := 0; o < s.Outputs(); o++ {
		row := s.Q.Row(o)
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo > 0 {
			if e := math.Log(hi / lo); e > tightest {
				tightest = e
			}
		}
	}
	fmt.Printf("tightest ε satisfied: %.6f (headroom %.2g)\n", tightest, s.Eps-tightest)

	if *wname != "" {
		w, err := ldp.WorkloadByName(*wname, s.Domain())
		if err != nil {
			fatal(err)
		}
		vp, err := s.Variances(w.Gram(), w.Queries())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nworkload %s (%d queries):\n", w.Name(), w.Queries())
		fmt.Printf("  per-user worst-case variance: %.6g\n", vp.Worst(1))
		fmt.Printf("  per-user average variance:    %.6g\n", vp.Avg(1))
		fmt.Printf("  sample complexity (α=%g):     %.4g users\n", *alpha, vp.SampleComplexity(*alpha))
		lb, err := ldp.LowerBoundSampleComplexity(w, s.Eps, *alpha)
		if err == nil && lb > 0 {
			fmt.Printf("  lower bound (any mechanism):  %.4g users\n", lb)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpvalidate: %v\n", err)
	os.Exit(1)
}
