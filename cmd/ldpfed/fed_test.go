package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// syncBuffer is a concurrency-safe output sink: the watch loop writes from
// its goroutine while the test polls the accumulated text.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// fedShard is a controllable in-process shard (real collector, framed
// transport) with a down switch that aborts connections mid-flight.
type fedShard struct {
	col  *ldp.Collector
	hs   *httptest.Server
	down atomic.Bool
}

func newFedShard(t *testing.T, agg ldp.Aggregator, w ldp.Workload) *fedShard {
	t.Helper()
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	handler, err := ldp.NewCollectorServer(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	sh := &fedShard{col: col}
	sh.hs = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if sh.down.Load() {
			panic(http.ErrAbortHandler)
		}
		handler.ServeHTTP(rw, req)
	}))
	t.Cleanup(sh.hs.Close)
	return sh
}

// newFed wires a fed pipeline over the given endpoints with deterministic,
// non-sleeping retries and captured output.
func newFed(t *testing.T, agg ldp.Aggregator, w ldp.Workload, endpoints []string, out, errw *syncBuffer, opts ...ldp.FleetOption) *fed {
	t.Helper()
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	base := []ldp.FleetOption{ldp.WithFleetRetryPolicy(ldp.RetryPolicy{
		MaxAttempts:    1,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     time.Millisecond,
		Multiplier:     1,
		Sleep:          func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})}
	fleet, err := ldp.NewFleet(agg, w, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range endpoints {
		if err := fleet.Register(context.Background(), ep); err != nil {
			t.Fatalf("register %s: %v", ep, err)
		}
	}
	return &fed{
		fleet: fleet, est: est, info: ldp.MechanismInfoOf(agg),
		level: 0, drift: 10, timeout: 5 * time.Second,
		out: out, errw: errw,
		lastEpochs: make(map[string]uint64),
	}
}

func fedMechanism(t *testing.T, domain int) (ldp.Aggregator, ldp.Workload) {
	t.Helper()
	w := ldp.Histogram(domain)
	agg, err := ldp.NewAggregator(benchfix.RRStrategy(domain, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	return agg, w
}

func seed(t *testing.T, sh *fedShard, domain, n int) {
	t.Helper()
	reports := make([]ldp.Report, n)
	for i := range reports {
		reports[i] = ldp.Report{Index: i % domain}
	}
	if err := sh.col.IngestBatch(reports); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A shard that is down at the very first poll does not kill the fan-in: it
// registers as a coverage gap, the other shards merge, and the output says
// exactly what the estimate covers (2/3, one missing).
func TestFedShardDownAtFirstPoll(t *testing.T) {
	const domain = 8
	agg, w := fedMechanism(t, domain)
	shards := []*fedShard{newFedShard(t, agg, w), newFedShard(t, agg, w), newFedShard(t, agg, w)}
	seed(t, shards[0], domain, 20)
	seed(t, shards[1], domain, 20)
	seed(t, shards[2], domain, 20) // absorbed, but never observable
	shards[2].down.Store(true)

	var out, errw syncBuffer
	f := newFed(t, agg, w, []string{shards[0].hs.URL, shards[1].hs.URL, shards[2].hs.URL}, &out, &errw)
	if err := f.mergeAndReport(context.Background()); err != nil {
		t.Fatalf("merge with one dead shard: %v", err)
	}
	if !strings.Contains(out.String(), "merged coverage 2/3 shards (1 missing): 40 reports") {
		t.Fatalf("output lacks the degraded coverage line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing") {
		t.Fatalf("per-shard table lacks the missing row:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "partial merge, coverage 2/3 shards") {
		t.Fatalf("stderr lacks the partial-merge warning:\n%s", errw.String())
	}

	// The same outage under a quorum of 3 refuses the estimate instead.
	var qout, qerrw syncBuffer
	fq := newFed(t, agg, w, []string{shards[0].hs.URL, shards[1].hs.URL, shards[2].hs.URL}, &qout, &qerrw,
		ldp.WithFleetQuorum(3))
	err := fq.mergeAndReport(context.Background())
	if err == nil || !strings.Contains(err.Error(), "below the quorum") {
		t.Fatalf("below-quorum merge = %v, want a quorum refusal", err)
	}
}

// A shard that flaps mid-watch degrades that pass (stale fallback) and the
// watcher keeps running; when the shard returns and new reports land, a
// later pass is complete again.
func TestFedFlappingShardMidWatch(t *testing.T) {
	const domain = 8
	agg, w := fedMechanism(t, domain)
	shards := []*fedShard{newFedShard(t, agg, w), newFedShard(t, agg, w)}
	seed(t, shards[0], domain, 10)
	seed(t, shards[1], domain, 10)

	var out, errw syncBuffer
	f := newFed(t, agg, w, []string{shards[0].hs.URL, shards[1].hs.URL}, &out, &errw)
	// Baseline pass: both fresh, and the fleet now holds last-good snapshots.
	if err := f.mergeAndReport(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "merged coverage 2/2 shards: 20 reports") {
		t.Fatalf("baseline output:\n%s", out.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.watch(ctx, 3*time.Millisecond)
	}()

	// The shard flaps down; new reports land on the healthy one. The next
	// passes merge degraded — and the watcher must survive them.
	shards[1].down.Store(true)
	seed(t, shards[0], domain, 5)
	waitFor(t, "a degraded (stale) watch pass", func() bool {
		return strings.Contains(out.String(), "merged coverage 2/2 shards (1 stale): 25 reports")
	})

	// The shard heals and more reports land: a complete pass follows.
	shards[1].down.Store(false)
	seed(t, shards[1], domain, 5)
	waitFor(t, "a complete watch pass after recovery", func() bool {
		return strings.Contains(out.String(), "merged coverage 2/2 shards: 30 reports")
	})

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watch loop did not exit on context cancellation")
	}
}

// scriptBackend is a hand-driven transport backend whose epoch the test can
// regress — the signature of a shard restarting without recovering state.
type scriptBackend struct {
	mu    sync.Mutex
	state []float64
	count float64
	epoch uint64
}

func (b *scriptBackend) IngestBatch(reports []protocol.Report) error { return nil }
func (b *scriptBackend) SnapshotEpoch() ([]float64, float64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]float64(nil), b.state...), b.count, b.epoch
}
func (b *scriptBackend) CountEpoch() (float64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count, b.epoch
}
func (b *scriptBackend) set(count float64, epoch uint64) {
	b.mu.Lock()
	b.count, b.epoch = count, epoch
	b.mu.Unlock()
}

// An epoch regression mid-watch — a shard restarted and lost state — is
// logged and the pass degrades to the shard's last accepted snapshot; the
// watcher retries instead of dying or accepting the undercount.
func TestFedEpochRegressionMidWatch(t *testing.T) {
	const domain = 8
	agg, w := fedMechanism(t, domain)
	info := ldp.MechanismInfoOf(agg)

	good := newFedShard(t, agg, w)
	seed(t, good, domain, 10)

	// The regressing shard: a scripted backend behind the real transport.
	sb := &scriptBackend{state: make([]float64, agg.StateLen())}
	sb.set(10, 5)
	ts, err := transport.NewServer(sb, info)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(ts.Handler())
	t.Cleanup(hs.Close)

	var out, errw syncBuffer
	f := newFed(t, agg, w, []string{good.hs.URL, hs.URL}, &out, &errw)
	if err := f.mergeAndReport(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "merged coverage 2/2 shards: 20 reports") {
		t.Fatalf("baseline output:\n%s", out.String())
	}

	// The shard "restarts without its state": epoch falls 5 → 2. The cheap
	// watch round sees a changed epoch and triggers a pass — exactly what a
	// ticking watcher would do.
	sb.set(3, 2)
	ctx := context.Background()
	if !f.epochsAdvanced(ctx) {
		t.Fatal("epoch change did not trigger a watch pass")
	}
	if err := f.mergeAndReport(ctx); err != nil {
		t.Fatalf("pass with a regressed shard should degrade, not fail: %v", err)
	}
	if !strings.Contains(errw.String(), "epoch regressed from 5") {
		t.Fatalf("stderr lacks the regression log:\n%s", errw.String())
	}
	// The degraded pass merged the shard's last ACCEPTED snapshot (count
	// 10), refusing the undercounting regressed one (count 3).
	if !strings.Contains(out.String(), "merged coverage 2/2 shards (1 stale): 20 reports") {
		t.Fatalf("output lacks the stale-fallback pass:\n%s", out.String())
	}
}
