// Command ldpfed is the multi-collector fan-in driver: it polls several
// ldpserve shards that aggregate the same mechanism, verifies each shard's
// mechanism identity (digest included — two strategy matrices sharing
// name/domain/ε are still different channels), merges their snapshots, and
// emits one estimate, exactly as if every report had been ingested into a
// single collector. The accumulator contract makes the merge an element-wise
// sum, so a full-coverage fan-in answer is bit-identical to a
// single-collector run over the same reports.
//
// The fan-in is failure-aware: shards live in a health-gated Fleet, so a
// shard that is down contributes its last-good snapshot (marked stale in the
// coverage line) or becomes an explicit coverage gap, instead of killing the
// merge or silently undercounting. -quorum N refuses to print an estimate
// covering fewer than N shards; -no-stale turns the stale fallback off.
//
// Usage:
//
//	ldpfed -servers http://10.0.0.1:8089,http://10.0.0.2:8089 -mech oue -n 256 -eps 1.0
//	ldpfed -servers shardA:8089,shardB:8089 -strategy prefix64.strategy -workload Prefix
//	ldpfed -servers shardA:8089,shardB:8089 -mech rappor -n 64 -watch 15s -quorum 2
//
// Each shard line reports its contribution (fresh, stale, or missing), count,
// and snapshot epoch, so a degraded or diverged shard is visible next to its
// peers; a shard whose count diverges from its peers by more than -drift (the
// signature of a shard restored from a stale checkpoint) is called out
// explicitly. With -watch the command keeps running: it re-polls the shards'
// /healthz on the interval and re-merges only when some shard's snapshot
// epoch advances. A flapping shard, a below-quorum pass, or a detected epoch
// regression logs and retries next tick rather than killing the watcher.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	ldp "repro"
	"repro/internal/mechflag"
)

// fed is the merge pipeline shared by the one-shot and -watch modes, with
// its outputs injectable so tests drive the loop directly.
type fed struct {
	fleet   *ldp.Fleet
	est     *ldp.Estimator
	info    ldp.MechanismInfo
	level   float64
	drift   float64
	window  uint64
	timeout time.Duration
	out     io.Writer
	errw    io.Writer

	// lastEpochs is endpoint→epoch as of the last successful merge — what
	// the cheap watch round compares /healthz against.
	lastEpochs map[string]uint64
}

func main() {
	servers := flag.String("servers", "", "comma-separated ldpserve endpoints to merge")
	wname := flag.String("workload", "Histogram", "workload family to answer")
	mech := flag.String("mech", "", "build a mechanism in place: oue, olh, rappor")
	n := flag.Int("n", 64, "domain size (with -mech)")
	eps := flag.Float64("eps", 1.0, "privacy budget ε (with -mech)")
	stratPath := flag.String("strategy", "", "reconstruct under a strategy wire file (SaveStrategy)")
	oraclePath := flag.String("oracle", "", "reconstruct under an oracle wire file (SaveOracle)")
	level := flag.Float64("ci", 0.95, "confidence level for the interval column (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-pass deadline for polling the shards")
	watch := flag.Duration("watch", 0, "continuous mode: re-poll /healthz on this interval and re-merge when a shard's epoch advances (0 = one shot)")
	drift := flag.Float64("drift", 10, "warn when the largest shard count exceeds the smallest by this ratio — a stale-checkpoint recovery symptom (0 disables)")
	quorum := flag.Int("quorum", 0, "refuse to print an estimate covering fewer than this many shards (0 = any non-empty coverage)")
	noStale := flag.Bool("no-stale", false, "disable the stale-snapshot fallback: an unreachable shard becomes a coverage gap instead of a stale contribution")
	window := flag.Uint64("window", 0, "also report a windowed estimate over the last N epochs: the shards' retained history supplies the baseline snapshot (0 disables; needs -data-dir shards)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpfed " + ldp.VersionString())
		return
	}

	endpoints := splitServers(*servers)
	if len(endpoints) == 0 {
		fatal(errors.New("at least one -servers endpoint is required"))
	}
	agg, err := mechflag.Build(*mech, *n, *eps, *stratPath, *oraclePath)
	if err != nil {
		fatal(err)
	}
	w, err := ldp.WorkloadByName(*wname, agg.Domain())
	if err != nil {
		fatal(err)
	}
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		fatal(err)
	}
	fleet, err := ldp.NewFleet(agg, w,
		ldp.WithFleetQuorum(*quorum),
		ldp.WithFleetStaleFallback(!*noStale))
	if err != nil {
		fatal(err)
	}

	f := &fed{
		fleet: fleet, est: est, info: ldp.MechanismInfoOf(agg),
		level: *level, drift: *drift, window: *window, timeout: *timeout,
		out: os.Stdout, errw: os.Stderr,
		lastEpochs: make(map[string]uint64),
	}
	regCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	// Register every shard up front: a mismatched mechanism is fatal
	// configuration in either mode, before a byte of state moves; a shard
	// that is merely down right now is admitted as a coverage gap and joins
	// the merge when it comes back.
	for _, ep := range endpoints {
		if err := fleet.Register(regCtx, ep); err != nil {
			cancel()
			fatal(err)
		}
	}
	cancel()

	if err := f.mergeAndReport(context.Background()); err != nil {
		fatal(err)
	}
	if *watch <= 0 {
		return
	}
	f.watch(context.Background(), *watch)
}

// watch is the continuous mode: one cheap /healthz round per tick, a full
// snapshot pull + re-merge only when some shard observed a new state. Any
// failure — a flapping shard, a below-quorum pass, an epoch regression —
// logs and retries next tick rather than killing the watcher. It returns
// when ctx is done.
func (f *fed) watch(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if !f.epochsAdvanced(ctx) {
				continue
			}
			if err := f.mergeAndReport(ctx); err != nil {
				fmt.Fprintf(f.errw, "ldpfed: %v (retrying in %s)\n", err, interval)
			}
		}
	}
}

// epochsAdvanced runs the cheap watch round: true when any reachable shard's
// /healthz epoch differs from the one it contributed to the last merge —
// including a shard reappearing after an outage. Unreachable shards are
// skipped (their epoch cannot have been observed to move).
func (f *fed) epochsAdvanced(ctx context.Context) bool {
	pctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	for ep, epoch := range f.fleet.Epochs(pctx) {
		if epoch != f.lastEpochs[ep] {
			return true
		}
	}
	return false
}

// mergeAndReport pulls one degraded-tolerant merged snapshot, reports the
// per-shard coverage, warns on count drift, and prints the estimate table.
func (f *fed) mergeAndReport(ctx context.Context) error {
	mctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()

	merged, cov, err := f.fleet.Snap(mctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(f.out, "%-32s %8s %12s %8s\n", "shard", "status", "count", "epoch")
	for _, sc := range cov.Shards {
		fmt.Fprintf(f.out, "%-32s %8s %12d %8d\n", sc.Endpoint, sc.Status, int(sc.Count), sc.Epoch)
		if sc.Err != "" {
			// The degradation reason — an unreachable shard, an epoch
			// regression the snapshot path refused — is operator-facing.
			fmt.Fprintf(f.errw, "ldpfed: shard %s %s: %s\n", sc.Endpoint, sc.Status, sc.Err)
		}
	}
	f.warnDrift(cov)
	if !cov.Complete() {
		fmt.Fprintf(f.errw, "ldpfed: WARNING: partial merge, coverage %s — the estimate undercounts the missing/stale shards' recent reports\n", cov)
	}

	// Commit the watch epochs only after a successful pass, and only for the
	// shards that contributed fresh state — a stale contribution leaves its
	// epoch un-advanced so the next tick re-pulls when the shard returns.
	for _, sc := range cov.Shards {
		if sc.Status == ldp.CoverageFresh {
			f.lastEpochs[sc.Endpoint] = sc.Epoch
		}
	}
	fmt.Fprintf(f.out, "\nmerged coverage %s: %d reports under %s (n=%d, ε=%g)\n",
		cov, int(merged.Count()), f.info.Mechanism, f.info.Domain, f.info.Epsilon)

	unbiased, err := f.est.Answers(merged)
	if err != nil {
		return err
	}
	consistent, err := f.est.ConsistentAnswers(merged)
	if err != nil {
		return err
	}
	// Intervals are best-effort: a workload too large for the closed-form
	// per-query variance (or a mechanism without one) still gets its point
	// estimates.
	var intervals []ldp.Interval
	if f.level > 0 {
		if intervals, err = f.est.ConfidenceIntervals(merged, f.level); err != nil {
			fmt.Fprintf(f.errw, "ldpfed: confidence intervals unavailable: %v\n", err)
		}
	}

	fmt.Fprintf(f.out, "\n%-8s %14s %14s", "query", "unbiased", "consistent")
	if intervals != nil {
		fmt.Fprintf(f.out, "   %g%% interval", 100*f.level)
	}
	fmt.Fprintln(f.out)
	show := len(unbiased)
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		fmt.Fprintf(f.out, "%-8d %14.1f %14.1f", i, unbiased[i], consistent[i])
		if intervals != nil {
			fmt.Fprintf(f.out, "   [%.1f, %.1f]", intervals[i].Low, intervals[i].High)
		}
		fmt.Fprintln(f.out)
	}
	if len(unbiased) > show {
		fmt.Fprintf(f.out, "... (%d more queries)\n", len(unbiased)-show)
	}
	f.reportWindow(mctx, merged)
	return nil
}

// reportWindow prints the windowed estimate over the trailing -window epochs:
// the shards' retained history supplies a merged baseline snapshot at (or
// nearest below) the window's start, and the diff against the live merge is
// exactly the reports that arrived inside the window. Degradation — a shard
// with no history, a baseline epoch coarsened away everywhere — logs and skips
// the table; the live estimate above already printed.
func (f *fed) reportWindow(ctx context.Context, merged ldp.Snapshot) {
	if f.window == 0 {
		return
	}
	if merged.Epoch() <= f.window {
		fmt.Fprintf(f.errw, "ldpfed: window of %d epochs not yet filled (merged epoch %d) — skipping the windowed estimate\n", f.window, merged.Epoch())
		return
	}
	base := merged.Epoch() - f.window
	hist, hcov, err := f.fleet.SnapAt(ctx, base)
	if err != nil {
		fmt.Fprintf(f.errw, "ldpfed: windowed estimate unavailable (no usable history at epoch %d): %v\n", base, err)
		return
	}
	answers, err := f.est.WindowAnswers(merged, hist)
	if err != nil {
		fmt.Fprintf(f.errw, "ldpfed: windowed estimate unavailable: %v\n", err)
		return
	}
	fmt.Fprintf(f.out, "\nwindow (%d, %d] over %d reports (baseline coverage %s):\n",
		hist.Epoch(), merged.Epoch(), int(merged.Count()-hist.Count()), hcov)
	show := len(answers)
	if show > 12 {
		show = 12
	}
	fmt.Fprintf(f.out, "%-8s %14s\n", "query", "windowed")
	for i := 0; i < show; i++ {
		fmt.Fprintf(f.out, "%-8d %14.1f\n", i, answers[i])
	}
	if len(answers) > show {
		fmt.Fprintf(f.out, "... (%d more queries)\n", len(answers)-show)
	}
}

// warnDrift flags a shard population that has diverged past the configured
// ratio — exactly what a shard silently restored from a stale checkpoint
// looks like next to its peers. Counts need not be equal (shards can serve
// uneven populations); an order-of-magnitude split warrants an operator
// look. Missing shards are excluded — their gap is already reported.
func (f *fed) warnDrift(cov ldp.Coverage) {
	if f.drift <= 0 {
		return
	}
	ratio, minS, maxS := cov.DriftRatio()
	if ratio > f.drift {
		fmt.Fprintf(f.errw,
			"ldpfed: WARNING: shard counts diverge beyond the %gx drift threshold: %s holds %d reports, %s only %d — %s may have recovered from a stale checkpoint or lost its state\n",
			f.drift, maxS.Endpoint, int(maxS.Count), minS.Endpoint, int(minS.Count), minS.Endpoint)
	}
}

// splitServers parses the comma-separated endpoint list, dropping empties.
func splitServers(s string) []string {
	var out []string
	for _, ep := range strings.Split(s, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			out = append(out, ep)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpfed: %v\n", err)
	os.Exit(1)
}
