// Command ldpfed is the multi-collector fan-in driver: it polls several
// ldpserve shards that aggregate the same mechanism, verifies each shard's
// mechanism identity (digest included — two strategy matrices sharing
// name/domain/ε are still different channels), merges their snapshots with
// Snapshot.Merge, and emits one estimate, exactly as if every report had
// been ingested into a single collector. The accumulator contract makes the
// merge an element-wise sum, so the fan-in answers are bit-identical to a
// single-collector run over the same reports.
//
// Usage:
//
//	ldpfed -servers http://10.0.0.1:8089,http://10.0.0.2:8089 -mech oue -n 256 -eps 1.0
//	ldpfed -servers shardA:8089,shardB:8089 -strategy prefix64.strategy -workload Prefix
//	ldpfed -servers shardA:8089,shardB:8089 -mech rappor -n 64 -watch 15s
//
// Each shard line reports its count, snapshot epoch, and digest, so a stale
// or mismatched shard is visible before its snapshot poisons the merge; a
// shard whose count diverges from its peers by more than -drift (the
// signature of a shard restored from a stale checkpoint) is called out
// explicitly. With -watch the command keeps running: it re-polls the shards'
// /healthz on the interval and re-merges only when some shard's snapshot
// epoch advances, so an idle fleet costs one cheap health round per tick.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ldp "repro"
	"repro/internal/mechflag"
)

// shard is one polled endpoint plus the snapshot epoch of the last merge it
// contributed to (what -watch compares /healthz against).
type shard struct {
	endpoint  string
	rc        *ldp.RemoteCollector
	lastEpoch uint64
}

// fed is the merge pipeline shared by the one-shot and -watch modes.
type fed struct {
	shards  []*shard
	est     *ldp.Estimator
	info    ldp.MechanismInfo
	level   float64
	drift   float64
	timeout time.Duration
}

func main() {
	servers := flag.String("servers", "", "comma-separated ldpserve endpoints to merge")
	wname := flag.String("workload", "Histogram", "workload family to answer")
	mech := flag.String("mech", "", "build a mechanism in place: oue, olh, rappor")
	n := flag.Int("n", 64, "domain size (with -mech)")
	eps := flag.Float64("eps", 1.0, "privacy budget ε (with -mech)")
	stratPath := flag.String("strategy", "", "reconstruct under a strategy wire file (SaveStrategy)")
	oraclePath := flag.String("oracle", "", "reconstruct under an oracle wire file (SaveOracle)")
	level := flag.Float64("ci", 0.95, "confidence level for the interval column (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-pass deadline for polling the shards")
	watch := flag.Duration("watch", 0, "continuous mode: re-poll /healthz on this interval and re-merge when a shard's epoch advances (0 = one shot)")
	drift := flag.Float64("drift", 10, "warn when the largest shard count exceeds the smallest by this ratio — a stale-checkpoint recovery symptom (0 disables)")
	flag.Parse()

	endpoints := splitServers(*servers)
	if len(endpoints) == 0 {
		fatal(errors.New("at least one -servers endpoint is required"))
	}
	agg, err := mechflag.Build(*mech, *n, *eps, *stratPath, *oraclePath)
	if err != nil {
		fatal(err)
	}
	info := ldp.MechanismInfoOf(agg)
	w, err := ldp.WorkloadByName(*wname, agg.Domain())
	if err != nil {
		fatal(err)
	}
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		fatal(err)
	}

	f := &fed{est: est, info: info, level: *level, drift: *drift, timeout: *timeout}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	// Handshake every shard up front: a mismatched mechanism is fatal
	// configuration, in either mode, before a byte of state moves.
	for _, ep := range endpoints {
		rc, err := ldp.NewRemoteCollector(ep, agg, w)
		if err != nil {
			cancel()
			fatal(err)
		}
		if err := rc.Verify(ctx, info.Mechanism, info.Epsilon, info.Digest); err != nil {
			cancel()
			fatal(fmt.Errorf("%s: %w", ep, err))
		}
		f.shards = append(f.shards, &shard{endpoint: ep, rc: rc})
	}
	cancel()

	if err := f.mergeAndReport(); err != nil {
		fatal(err)
	}
	if *watch <= 0 {
		return
	}
	// Continuous mode: one cheap /healthz round per tick; a full snapshot
	// pull + re-merge only when some shard observed a new state. A flapping
	// shard (or a detected epoch regression) logs and retries next tick
	// rather than killing the watcher.
	for range time.Tick(*watch) {
		advanced, err := f.anyEpochAdvanced()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldpfed: %v (retrying in %s)\n", err, *watch)
			continue
		}
		if !advanced {
			continue
		}
		if err := f.mergeAndReport(); err != nil {
			fmt.Fprintf(os.Stderr, "ldpfed: %v (retrying in %s)\n", err, *watch)
		}
	}
}

// anyEpochAdvanced asks every shard's /healthz for its (count, epoch) pair
// and reports whether any epoch differs from the last merged one.
func (f *fed) anyEpochAdvanced() (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()
	advanced := false
	for _, sh := range f.shards {
		h, err := sh.rc.Healthz(ctx)
		if err != nil {
			return false, fmt.Errorf("%s: %w", sh.endpoint, err)
		}
		if h.Epoch != sh.lastEpoch {
			advanced = true
		}
	}
	return advanced, nil
}

// mergeAndReport pulls one consistent snapshot per shard, warns on count
// drift, merges, and prints the estimate table.
func (f *fed) mergeAndReport() error {
	ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
	defer cancel()

	snaps := make([]ldp.Snapshot, 0, len(f.shards))
	fmt.Printf("%-32s %12s %8s %s\n", "shard", "count", "epoch", "digest")
	for _, sh := range f.shards {
		snap, err := sh.rc.Snap(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", sh.endpoint, err)
		}
		fmt.Printf("%-32s %12d %8d %s\n", sh.endpoint, int(snap.Count()), snap.Epoch(), snap.Info().Digest)
		snaps = append(snaps, snap)
	}
	f.warnDrift(snaps)

	merged, err := ldp.MergeSnapshots(snaps...)
	if err != nil {
		return err
	}
	// Commit the epochs only after the whole pass succeeded, so a failed
	// merge is retried by the next -watch tick.
	for i, sh := range f.shards {
		sh.lastEpoch = snaps[i].Epoch()
	}
	fmt.Printf("\nmerged %d shards: %d reports under %s (n=%d, ε=%g) at %s\n",
		len(snaps), int(merged.Count()), f.info.Mechanism, f.info.Domain, f.info.Epsilon,
		time.Now().Format(time.RFC3339))

	unbiased, err := f.est.Answers(merged)
	if err != nil {
		return err
	}
	consistent, err := f.est.ConsistentAnswers(merged)
	if err != nil {
		return err
	}
	// Intervals are best-effort: a workload too large for the closed-form
	// per-query variance (or a mechanism without one) still gets its point
	// estimates.
	var intervals []ldp.Interval
	if f.level > 0 {
		if intervals, err = f.est.ConfidenceIntervals(merged, f.level); err != nil {
			fmt.Fprintf(os.Stderr, "ldpfed: confidence intervals unavailable: %v\n", err)
		}
	}

	fmt.Printf("\n%-8s %14s %14s", "query", "unbiased", "consistent")
	if intervals != nil {
		fmt.Printf("   %g%% interval", 100*f.level)
	}
	fmt.Println()
	show := len(unbiased)
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		fmt.Printf("%-8d %14.1f %14.1f", i, unbiased[i], consistent[i])
		if intervals != nil {
			fmt.Printf("   [%.1f, %.1f]", intervals[i].Low, intervals[i].High)
		}
		fmt.Println()
	}
	if len(unbiased) > show {
		fmt.Printf("... (%d more queries)\n", len(unbiased)-show)
	}
	return nil
}

// warnDrift flags a shard population that has diverged past the configured
// ratio — exactly what a shard silently restored from a stale checkpoint
// looks like next to its peers. Counts need not be equal (shards can serve
// uneven populations); an order-of-magnitude split warrants an operator look.
func (f *fed) warnDrift(snaps []ldp.Snapshot) {
	if f.drift <= 0 || len(snaps) < 2 {
		return
	}
	minC, maxC := snaps[0].Count(), snaps[0].Count()
	minEp, maxEp := f.shards[0].endpoint, f.shards[0].endpoint
	for i, s := range snaps[1:] {
		switch c := s.Count(); {
		case c < minC:
			minC, minEp = c, f.shards[i+1].endpoint
		case c > maxC:
			maxC, maxEp = c, f.shards[i+1].endpoint
		}
	}
	if maxC > minC*f.drift && maxC > 0 {
		fmt.Fprintf(os.Stderr,
			"ldpfed: WARNING: shard counts diverge beyond the %gx drift threshold: %s holds %d reports, %s only %d — %s may have recovered from a stale checkpoint or lost its state\n",
			f.drift, maxEp, int(maxC), minEp, int(minC), minEp)
	}
}

// splitServers parses the comma-separated endpoint list, dropping empties.
func splitServers(s string) []string {
	var out []string
	for _, ep := range strings.Split(s, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			out = append(out, ep)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpfed: %v\n", err)
	os.Exit(1)
}
