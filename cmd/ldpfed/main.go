// Command ldpfed is the multi-collector fan-in driver: it polls several
// ldpserve shards that aggregate the same mechanism, verifies each shard's
// mechanism identity (digest included — two strategy matrices sharing
// name/domain/ε are still different channels), merges their snapshots with
// Snapshot.Merge, and emits one estimate, exactly as if every report had
// been ingested into a single collector. The accumulator contract makes the
// merge an element-wise sum, so the fan-in answers are bit-identical to a
// single-collector run over the same reports.
//
// Usage:
//
//	ldpfed -servers http://10.0.0.1:8089,http://10.0.0.2:8089 -mech oue -n 256 -eps 1.0
//	ldpfed -servers shardA:8089,shardB:8089 -strategy prefix64.strategy -workload Prefix
//
// Each shard line reports its count, snapshot epoch, and digest, so a stale
// or mismatched shard is visible before its snapshot poisons the merge.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ldp "repro"
	"repro/internal/mechflag"
)

func main() {
	servers := flag.String("servers", "", "comma-separated ldpserve endpoints to merge")
	wname := flag.String("workload", "Histogram", "workload family to answer")
	mech := flag.String("mech", "", "build a mechanism in place: oue, olh, rappor")
	n := flag.Int("n", 64, "domain size (with -mech)")
	eps := flag.Float64("eps", 1.0, "privacy budget ε (with -mech)")
	stratPath := flag.String("strategy", "", "reconstruct under a strategy wire file (SaveStrategy)")
	oraclePath := flag.String("oracle", "", "reconstruct under an oracle wire file (SaveOracle)")
	level := flag.Float64("ci", 0.95, "confidence level for the interval column (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline for polling the shards")
	flag.Parse()

	endpoints := splitServers(*servers)
	if len(endpoints) == 0 {
		fatal(errors.New("at least one -servers endpoint is required"))
	}
	agg, err := mechflag.Build(*mech, *n, *eps, *stratPath, *oraclePath)
	if err != nil {
		fatal(err)
	}
	info := ldp.MechanismInfoOf(agg)
	w, err := ldp.WorkloadByName(*wname, agg.Domain())
	if err != nil {
		fatal(err)
	}
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Poll every shard: handshake first (reject a mismatched shard before
	// reading a byte of state), then one consistent snapshot each.
	snaps := make([]ldp.Snapshot, 0, len(endpoints))
	fmt.Printf("%-32s %12s %8s %s\n", "shard", "count", "epoch", "digest")
	for _, ep := range endpoints {
		rc, err := ldp.NewRemoteCollector(ep, agg, w)
		if err != nil {
			fatal(err)
		}
		if err := rc.Verify(ctx, info.Mechanism, info.Epsilon, info.Digest); err != nil {
			fatal(fmt.Errorf("%s: %w", ep, err))
		}
		snap, err := rc.Snap(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", ep, err))
		}
		fmt.Printf("%-32s %12d %8d %s\n", ep, int(snap.Count()), snap.Epoch(), snap.Info().Digest)
		snaps = append(snaps, snap)
	}

	merged, err := ldp.MergeSnapshots(snaps...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nmerged %d shards: %d reports under %s (n=%d, ε=%g)\n",
		len(snaps), int(merged.Count()), info.Mechanism, info.Domain, info.Epsilon)

	unbiased, err := est.Answers(merged)
	if err != nil {
		fatal(err)
	}
	consistent, err := est.ConsistentAnswers(merged)
	if err != nil {
		fatal(err)
	}
	// Intervals are best-effort: a workload too large for the closed-form
	// per-query variance (or a mechanism without one) still gets its point
	// estimates.
	var intervals []ldp.Interval
	if *level > 0 {
		if intervals, err = est.ConfidenceIntervals(merged, *level); err != nil {
			fmt.Fprintf(os.Stderr, "ldpfed: confidence intervals unavailable: %v\n", err)
		}
	}

	fmt.Printf("\n%-8s %14s %14s", "query", "unbiased", "consistent")
	if intervals != nil {
		fmt.Printf("   %g%% interval", 100**level)
	}
	fmt.Println()
	show := len(unbiased)
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		fmt.Printf("%-8d %14.1f %14.1f", i, unbiased[i], consistent[i])
		if intervals != nil {
			fmt.Printf("   [%.1f, %.1f]", intervals[i].Low, intervals[i].High)
		}
		fmt.Println()
	}
	if len(unbiased) > show {
		fmt.Printf("... (%d more queries)\n", len(unbiased)-show)
	}
}

// splitServers parses the comma-separated endpoint list, dropping empties.
func splitServers(s string) []string {
	var out []string
	for _, ep := range strings.Split(s, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			out = append(out, ep)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpfed: %v\n", err)
	os.Exit(1)
}
