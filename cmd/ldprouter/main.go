// Command ldprouter runs the failure-aware fan-in tier in front of N
// collector shards: it speaks the same framed protocol a single shard does,
// so drivers and pollers point at the router unchanged, while behind it
// membership is dynamic and health-gated and estimates degrade gracefully
// instead of failing when shards do.
//
//	POST /reports    keyed batches routed to a live shard (key-sticky: a
//	                 retried key replays on the shard that first saw it)
//	GET  /snapshot   merged snapshot; Ldp-Fleet-Coverage headers say how
//	                 many shards contributed, and how (fresh vs stale)
//	GET  /healthz    liveness + mechanism identity + per-shard membership
//	GET  /readyz     readiness: enough shards routable to meet -quorum
//	GET  /shards     membership listing
//	POST /shards     register a shard at runtime  {"endpoint": "http://..."}
//	DELETE /shards   deregister                    ?endpoint=http://...
//
// Shards that fail their readiness probe -unhealthy-after times in a row are
// gated out of ingest routing; per-shard circuit breakers stop merges from
// dialing a dead backend every time; with -no-stale off (the default) an
// unreachable shard contributes its last fetched snapshot, marked stale in
// the coverage. -quorum N makes the router refuse to serve a snapshot
// covering fewer than N shards.
//
// Usage:
//
//	ldprouter -listen :8090 -mech oue -n 256 -eps 1.0 \
//	    -servers http://shard0:8089,http://shard1:8089,http://shard2:8089
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // debug sidecar: profiles on -debug-addr only, never the serving listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ldp "repro"
	"repro/internal/mechflag"
)

func main() {
	listen := flag.String("listen", ":8090", "address to serve on")
	servers := flag.String("servers", "", "comma-separated shard base URLs to register at startup")
	mech := flag.String("mech", "", "build the fleet's mechanism in place: oue, olh, rappor")
	n := flag.Int("n", 64, "domain size (with -mech)")
	eps := flag.Float64("eps", 1.0, "privacy budget ε (with -mech)")
	stratPath := flag.String("strategy", "", "use a strategy wire file (SaveStrategy)")
	oraclePath := flag.String("oracle", "", "use an oracle wire file (SaveOracle)")
	wname := flag.String("workload", "Histogram", "workload family")
	quorum := flag.Int("quorum", 0, "refuse snapshots covering fewer than this many shards (0 = serve any non-empty coverage)")
	noStale := flag.Bool("no-stale", false, "disable the stale-snapshot fallback: an unreachable shard becomes a coverage gap instead of a stale contribution")
	bindLog := flag.String("bindings-log", "", "append-only log persisting idempotency-key→shard bindings across router restarts")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "readiness probe interval")
	unhealthyAfter := flag.Int("unhealthy-after", 2, "consecutive failed probes before a shard is gated out of routing")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this side address (never the main listener); empty disables")
	slowReq := flag.Duration("slow-request", 0, "log a warning for requests slower than this (0 = library default)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldprouter " + ldp.VersionString())
		return
	}

	agg, err := mechflag.Build(*mech, *n, *eps, *stratPath, *oraclePath)
	if err != nil {
		fatal(err)
	}
	info := ldp.MechanismInfoOf(agg)
	w, err := ldp.WorkloadByName(*wname, agg.Domain())
	if err != nil {
		fatal(err)
	}
	fleetOpts := []ldp.FleetOption{
		ldp.WithFleetQuorum(*quorum),
		ldp.WithFleetStaleFallback(!*noStale),
		ldp.WithFleetUnhealthyAfter(*unhealthyAfter),
	}
	if *bindLog != "" {
		fleetOpts = append(fleetOpts, ldp.WithFleetBindingLog(*bindLog))
	}
	fleet, err := ldp.NewFleet(agg, w, fleetOpts...)
	if err != nil {
		fatal(err)
	}
	defer fleet.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, ep := range strings.Split(*servers, ",") {
		if ep = strings.TrimSpace(ep); ep == "" {
			continue
		}
		// A shard that is down right now is admitted gated-out and joins when
		// a probe finds it up; only a mechanism mismatch refuses it.
		if err := fleet.Register(ctx, ep); err != nil {
			fatal(err)
		}
	}
	fs, err := ldp.NewFleetServer(fleet, ldp.WithSlowRequestThreshold(*slowReq))
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		// pprof registers on the default mux at import; serving it on a
		// separate listener keeps profiles off the public surface.
		go func() {
			dsrv := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "ldprouter: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("ldprouter: pprof debug listener on %s\n", *debugAddr)
	}
	// POST /query answers workloads over the fleet's merged snapshot with the
	// same mechanism the shards aggregate under.
	if err := fs.EnableQueries(agg); err != nil {
		fatal(err)
	}

	// The probe loop is what turns shard failures into membership changes.
	go func() {
		ticker := time.NewTicker(*probeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				pctx, cancel := context.WithTimeout(ctx, *probeEvery)
				fs.Probe(pctx)
				cancel()
			}
		}
	}()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           fs.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("ldprouter: %s (n=%d, ε=%g) fronting %d shard(s) on %s (quorum=%d, stale-fallback=%v)\n",
		info.Mechanism, info.Domain, info.Epsilon, len(fleet.Members()), *listen, *quorum, !*noStale)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Drain: refuse new ingest (503 + Retry-After, so clients keep their
	// keyed batches and retry elsewhere/later), let in-flight requests
	// finish, leave snapshot reads up until the listener closes.
	fs.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	fmt.Println("ldprouter: drained")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldprouter: %v\n", err)
	os.Exit(1)
}
