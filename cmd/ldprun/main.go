// Command ldprun demonstrates the full LDP protocol end to end: it builds a
// mechanism (an optimized strategy — loaded or optimized on the spot — or one
// of the frequency oracles), simulates a population of users randomizing
// their data through it, aggregates the reports through the sharded
// collector, and prints true vs estimated workload answers — with and without
// consistency post-processing. Every mechanism family runs through the same
// streaming Client/Collector pipeline.
//
// With -remote the same simulation drives a networked collector
// (cmd/ldpserve) instead of the in-process one: reports stream over the
// transport's framed HTTP binding and estimates are reconstructed from the
// server's snapshot. Same seed, same estimates, either way.
//
// Usage:
//
//	ldprun -workload Prefix -n 64 -eps 1.0 -users 50000
//	ldprun -mech olh -workload Prefix -n 256 -users 100000
//	ldprun -strategy prefix256.strategy -workload Prefix -n 256 -dataset MEDCOST
//	ldprun -mech oue -n 256 -remote http://10.0.0.1:8089
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	ldp "repro"
	"repro/internal/dataset"
)

func main() {
	wname := flag.String("workload", "Prefix", "workload family")
	n := flag.Int("n", 64, "domain size")
	eps := flag.Float64("eps", 1.0, "privacy budget ε")
	users := flag.Int("users", 50000, "number of simulated users")
	ds := flag.String("dataset", "HEPTH", "data shape: HEPTH, MEDCOST, NETTRACE, UNIFORM")
	mech := flag.String("mech", "optimize", "mechanism: optimize, oue, olh, rappor")
	stratPath := flag.String("strategy", "", "load a precomputed strategy instead of optimizing")
	iters := flag.Int("iters", 300, "optimizer iterations when optimizing")
	seed := flag.Int64("seed", 0, "random seed")
	remote := flag.String("remote", "", "stream reports to a remote ldpserve collector at this address")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldprun " + ldp.VersionString())
		return
	}

	w, err := ldp.WorkloadByName(*wname, *n)
	if err != nil {
		fatal(err)
	}

	// Build the mechanism's two protocol halves. Strategy mechanisms adapt a
	// matrix; oracles are their own Randomizer and Aggregator.
	var (
		rz       ldp.Randomizer
		agg      ldp.Aggregator
		mechName string
		digest   string
	)
	switch strings.ToLower(*mech) {
	case "optimize", "optimized":
		var strat *ldp.Strategy
		if *stratPath != "" {
			f, err := os.Open(*stratPath)
			if err != nil {
				fatal(err)
			}
			strat, err = ldp.LoadStrategy(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("loaded strategy %dx%d (ε=%g) from %s\n",
				strat.Outputs(), strat.Domain(), strat.Eps, *stratPath)
		} else {
			fmt.Printf("optimizing strategy for %s (n=%d, ε=%g)...\n", w.Name(), *n, *eps)
			m, err := ldp.Optimize(context.Background(), w, *eps,
				ldp.WithIterations(*iters), ldp.WithSeed(*seed))
			if err != nil {
				fatal(err)
			}
			strat = m.Strategy()
		}
		if rz, err = ldp.NewRandomizer(strat); err != nil {
			fatal(err)
		}
		if agg, err = ldp.NewAggregator(strat); err != nil {
			fatal(err)
		}
		mechName = "strategy"
		digest = ldp.StrategyDigest(strat)
	case "oue", "olh", "rappor":
		o, err := ldp.OracleByName(strings.ToUpper(*mech), *n, *eps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("frequency oracle %s (n=%d, ε=%g)\n", o.Name(), *n, *eps)
		rz, agg = o, o
		mechName = o.Name()
	default:
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}

	x, err := dataset.ByName(*ds, *n, *users, *seed+1)
	if err != nil {
		fatal(err)
	}
	truth := w.MatVec(x)

	// Client side: every user randomizes locally; the collector — in-process
	// and sharded, or a remote ldpserve reached over the framed HTTP
	// transport — absorbs the reports.
	client, err := ldp.NewClient(rz)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed + 2))
	// One drive loop serves both collectors — only the ingest sink differs,
	// which is what keeps the remote and local paths seed-identical.
	drive := func(ingest func(ldp.Report) error) {
		for u, cnt := range x {
			for j := 0; j < int(cnt); j++ {
				rep, err := client.Randomize(u, rng)
				if err != nil {
					fatal(err)
				}
				if err := ingest(rep); err != nil {
					fatal(err)
				}
			}
		}
	}
	// One Estimator answers every snapshot — the in-process collector's, the
	// remote server's, or (see cmd/ldpfed) a merge of several shards'.
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		fatal(err)
	}
	var snap ldp.Snapshot
	if *remote != "" {
		ctx := context.Background()
		rcol, err := ldp.NewRemoteCollector(*remote, agg, w)
		if err != nil {
			fatal(err)
		}
		// Refuse to stream through a server aggregating under a different
		// configuration; rz.Epsilon() is the mechanism's actual budget and
		// the digest pins the exact strategy matrix.
		if err := rcol.Verify(ctx, mechName, rz.Epsilon(), digest); err != nil {
			fatal(err)
		}
		drive(func(rep ldp.Report) error { return rcol.Ingest(ctx, rep) })
		if err := rcol.Flush(ctx); err != nil {
			fatal(err)
		}
		if snap, err = rcol.Snap(ctx); err != nil {
			fatal(err)
		}
		fmt.Printf("streamed %d randomized reports (ε=%g each) to %s (snapshot epoch %d)\n",
			int(snap.Count()), client.Epsilon(), *remote, snap.Epoch())
	} else {
		col, err := ldp.NewCollector(agg, w, 0)
		if err != nil {
			fatal(err)
		}
		drive(col.Ingest)
		snap = col.Snap()
		fmt.Printf("collected %d randomized reports (ε=%g each, %d shards)\n",
			int(snap.Count()), client.Epsilon(), col.Shards())
	}
	unbiased, err := est.Answers(snap)
	if err != nil {
		fatal(err)
	}
	consistent, err := est.ConsistentAnswers(snap)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\n%-8s %14s %14s %14s\n", "query", "truth", "unbiased", "consistent")
	show := len(truth)
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		fmt.Printf("%-8d %14.1f %14.1f %14.1f\n", i, truth[i], unbiased[i], consistent[i])
	}
	if len(truth) > show {
		fmt.Printf("... (%d more queries)\n", len(truth)-show)
	}
	fmt.Printf("\nroot-mean-squared error: unbiased %.2f, consistent %.2f\n",
		rmse(truth, unbiased), rmse(truth, consistent))
}

func rmse(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldprun: %v\n", err)
	os.Exit(1)
}
