// Command ldprun demonstrates the full LDP protocol end to end: it loads (or
// optimizes) a strategy, simulates a population of users randomizing their
// data through it, aggregates the reports, and prints true vs estimated
// workload answers — with and without consistency post-processing.
//
// Usage:
//
//	ldprun -workload Prefix -n 64 -eps 1.0 -users 50000
//	ldprun -strategy prefix256.strategy -workload Prefix -n 256 -dataset MEDCOST
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	ldp "repro"
	"repro/internal/dataset"
)

func main() {
	wname := flag.String("workload", "Prefix", "workload family")
	n := flag.Int("n", 64, "domain size")
	eps := flag.Float64("eps", 1.0, "privacy budget ε")
	users := flag.Int("users", 50000, "number of simulated users")
	ds := flag.String("dataset", "HEPTH", "data shape: HEPTH, MEDCOST, NETTRACE, UNIFORM")
	stratPath := flag.String("strategy", "", "load a precomputed strategy instead of optimizing")
	iters := flag.Int("iters", 300, "optimizer iterations when optimizing")
	seed := flag.Int64("seed", 0, "random seed")
	flag.Parse()

	w, err := ldp.WorkloadByName(*wname, *n)
	if err != nil {
		fatal(err)
	}

	var strat *ldp.Strategy
	if *stratPath != "" {
		f, err := os.Open(*stratPath)
		if err != nil {
			fatal(err)
		}
		strat, err = ldp.LoadStrategy(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded strategy %dx%d (ε=%g) from %s\n",
			strat.Outputs(), strat.Domain(), strat.Eps, *stratPath)
	} else {
		fmt.Printf("optimizing strategy for %s (n=%d, ε=%g)...\n", w.Name(), *n, *eps)
		mech, err := ldp.Optimize(w, *eps, &ldp.OptimizeOptions{Iters: *iters, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		strat = mech.Strategy()
	}

	x, err := dataset.ByName(*ds, *n, *users, *seed+1)
	if err != nil {
		fatal(err)
	}
	truth := w.MatVec(x)

	// Client side: every user randomizes locally.
	client, err := ldp.NewClient(strat)
	if err != nil {
		fatal(err)
	}
	server, err := ldp.NewServer(strat, w)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed + 2))
	for u, cnt := range x {
		for j := 0; j < int(cnt); j++ {
			if err := server.Add(client.Respond(u, rng)); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("collected %d randomized reports (ε=%g each)\n", int(server.Count()), client.Epsilon())

	unbiased := server.Answers()
	consistent, err := server.ConsistentAnswers()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\n%-8s %14s %14s %14s\n", "query", "truth", "unbiased", "consistent")
	show := len(truth)
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		fmt.Printf("%-8d %14.1f %14.1f %14.1f\n", i, truth[i], unbiased[i], consistent[i])
	}
	if len(truth) > show {
		fmt.Printf("... (%d more queries)\n", len(truth)-show)
	}
	fmt.Printf("\nroot-mean-squared error: unbiased %.2f, consistent %.2f\n",
		rmse(truth, unbiased), rmse(truth, consistent))
}

func rmse(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldprun: %v\n", err)
	os.Exit(1)
}
