// Command ldpload is the deterministic traffic simulator: it spins a live
// router+shards deployment, drives a seeded population of simulated LDP
// clients at it — zipfian time-shifting items, bursty arrivals, abandonment,
// retry storms, and a chaos schedule that kills, drains, and degrades shards
// mid-run — then scores the result against the generator's own ground truth
// and emits a BENCH_loadgen.json scorecard.
//
// The deterministic sections of the scorecard (counts, estimate scoring) are
// bit-identical across repeats at the same seed; -repeat 2 proves it on the
// spot. The gate (exit status) is the scorecard's Passed(): exactly-once
// accounting (acknowledged == absorbed through every injected fault) and all
// estimates inside the repo's statistical-acceptance envelopes.
//
// Usage:
//
//	ldpload -scenario smoke -seed 1 -out BENCH_loadgen.json
//	ldpload -scenario soak -clients 1000000 -shards 5
//	ldpload -evolve -clients 20000          # strategy-evolution search loop
//
// Shards run as real subprocesses (this binary re-execs itself), so kill
// events are true SIGKILLs and restart recovery replays a real WAL;
// -inprocess keeps everything in one process for quick iteration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	ldp "repro"
	"repro/internal/loadgen"
	"repro/internal/loadgen/evolve"
)

func main() {
	// A re-exec'd shard child serves and never returns; the parent falls
	// through to the simulator CLI.
	if loadgen.RunShardFromEnv() {
		return
	}

	scenario := flag.String("scenario", "smoke", "scenario preset: smoke (50k clients) or soak (100k)")
	seed := flag.Uint64("seed", 1, "scenario seed; fixes the population, ground truth, and fault ordering")
	clients := flag.Int("clients", 0, "override the preset's client count")
	shards := flag.Int("shards", 3, "number of collector shards")
	mech := flag.String("mech", "", "override mechanism: oue, olh, rappor, strategy")
	n := flag.Int("n", 0, "override domain size")
	eps := flag.Float64("eps", 0, "override privacy budget ε")
	workers := flag.Int("workers", 0, "override load-generator worker count")
	batch := flag.Int("batch", 0, "override client batch size")
	rps := flag.Float64("rps", 0, "target offered reports/sec (0 = unpaced)")
	ckptEvery := flag.Int("checkpoint-every", 5000, "shard checkpoint interval (reports)")
	fsync := flag.Bool("fsync", false, "shards fsync every WAL group commit")
	commitWindow := flag.Duration("commit-window", 0, "shard group-commit gathering window")
	out := flag.String("out", "BENCH_loadgen.json", "scorecard output path (empty = stdout only)")
	repeat := flag.Int("repeat", 1, "run the scenario this many times and require bit-identical deterministic sections")
	inproc := flag.Bool("inprocess", false, "run shards in-process (quick iteration; kills quiesce instead of SIGKILL)")
	doEvolve := flag.Bool("evolve", false, "run the strategy-evolution search loop and print the principles table")
	settle := flag.Duration("settle-timeout", 2*time.Minute, "bound on the post-run settle (flush + recovery) phase")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpload " + ldp.VersionString())
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scn, err := buildScenario(*scenario, *seed, *clients, *mech, *n, *eps, *workers, *batch)
	if err != nil {
		fatal(err)
	}

	scratch, err := os.MkdirTemp("", "ldpload-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(scratch)
	var spawn loadgen.SpawnFunc
	if !*inproc {
		spawn = loadgen.NewSubprocessSpawner()
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ldpload: "+format+"\n", args...)
	}

	if *doEvolve {
		runs := 0
		rep, err := evolve.Run(ctx, evolve.Config{
			Scenario: scn,
			Baseline: evolve.Params{
				Shards: *shards, Batch: scn.Batch, CheckpointEvery: *ckptEvery,
				Fsync: *fsync, CommitWindow: *commitWindow,
			},
			BaseDirs: func() string {
				runs++
				dir := filepath.Join(scratch, fmt.Sprintf("run-%d", runs))
				_ = os.MkdirAll(dir, 0o755)
				return dir
			},
			Spawn: spawn,
			Logf:  logf,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep.PrinciplesTable())
		if *out != "" {
			writeJSON(*out, rep)
		}
		return
	}

	var first *loadgen.Scorecard
	for i := 0; i < max(*repeat, 1); i++ {
		card, err := loadgen.Run(ctx, loadgen.RunConfig{
			Scenario: scn,
			Deploy: loadgen.DeployConfig{
				Shards:  *shards,
				BaseDir: filepath.Join(scratch, fmt.Sprintf("run-%d", i)),
				Spawn:   spawn,
				Shard: loadgen.ShardConfig{
					CheckpointEvery: *ckptEvery,
					Fsync:           *fsync,
					CommitWindow:    *commitWindow,
				},
			},
			TargetRPS:     *rps,
			SettleTimeout: *settle,
			Logf:          logf,
		})
		if err != nil {
			fatal(err)
		}
		if first == nil {
			first = card
		} else if !first.DeterministicEqual(card) {
			fatal(fmt.Errorf("run %d diverged from run 0 at seed %d: counts %+v vs %+v, estimates %+v vs %+v",
				i, scn.Seed, card.Counts, first.Counts, card.Estimates, first.Estimates))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(first)
	if *out != "" {
		writeJSON(*out, first)
	}
	if !first.Passed() {
		fatal(fmt.Errorf("gate failed: exactly_once=%v (acked %d, absorbed %d), in_envelope=%v (max cell err %.2f vs %.2f, tse %.2f vs %.2f)",
			first.Counts.ExactlyOnce, first.Counts.AckedReports, first.Counts.AbsorbedReports,
			first.Estimates.InEnvelope, first.Estimates.MaxAbsCellError, first.Estimates.CellEnvelope,
			first.Estimates.TSE, first.Estimates.TSEBound))
	}
}

// buildScenario resolves the preset plus overrides and validates the result.
func buildScenario(name string, seed uint64, clients int, mech string, n int, eps float64, workers, batch int) (loadgen.Scenario, error) {
	var scn loadgen.Scenario
	switch name {
	case "smoke":
		scn = loadgen.SmokeScenario(seed)
	case "soak":
		scn = loadgen.SoakScenario(seed)
	default:
		return scn, fmt.Errorf("unknown scenario %q (want smoke or soak)", name)
	}
	if clients > 0 {
		scn.Clients = clients
	}
	if mech != "" {
		scn.Mechanism = mech
	}
	if n > 0 {
		scn.Domain = n
	}
	if eps > 0 {
		scn.Epsilon = eps
	}
	if workers > 0 {
		scn.Workers = workers
	}
	if batch > 0 {
		scn.Batch = batch
	}
	return scn, scn.Validate()
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldpload:", err)
	os.Exit(1)
}
