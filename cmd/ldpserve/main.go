// Command ldpserve runs a networked LDP collector: it builds an Aggregator
// from a persisted mechanism (a SaveStrategy/SaveOracle wire file) or an
// on-the-spot configuration, fronts a sharded in-process Collector with the
// transport's HTTP binding, and serves
//
//	POST /reports  — framed Report batches, each frame applied atomically
//	GET  /snapshot — one framed snapshot (merged accumulator + count)
//	GET  /healthz  — JSON liveness, count, mechanism identity
//
// Any client speaking the frame format can ingest; `ldprun -remote` drives
// the complete pipeline against it. The server never sees a raw user type —
// only ε-LDP reports — so it runs untrusted.
//
// Usage:
//
//	ldpserve -listen :8089 -mech oue -n 256 -eps 1.0
//	ldpserve -listen :8089 -oracle olh256.oracle
//	ldpserve -listen :8089 -strategy prefix64.strategy
//
// With -data-dir the shard is durable: every acknowledged batch is appended
// to a write-ahead log before the ingest response is sent, the accumulator is
// checkpointed every -checkpoint-every reports, and startup recovers the
// directory's prior state (count, snapshot epoch, and the idempotency keys of
// logged batches — so client retries spanning the restart absorb exactly
// once). -fsync extends the guarantee from process crashes to power failures.
//
//	ldpserve -listen :8089 -mech oue -n 256 -eps 1.0 -data-dir /var/lib/ldp/shard0
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // debug sidecar: profiles on -debug-addr only, never the serving listener
	"os"
	"os/signal"
	"syscall"
	"time"

	ldp "repro"
	"repro/internal/mechflag"
)

func main() {
	listen := flag.String("listen", ":8089", "address to serve on")
	mech := flag.String("mech", "", "build a mechanism in place: oue, olh, rappor")
	n := flag.Int("n", 64, "domain size (with -mech)")
	eps := flag.Float64("eps", 1.0, "privacy budget ε (with -mech)")
	stratPath := flag.String("strategy", "", "serve a strategy wire file (SaveStrategy)")
	oraclePath := flag.String("oracle", "", "serve an oracle wire file (SaveOracle)")
	wname := flag.String("workload", "Histogram", "workload family for server-side consistency tooling")
	shards := flag.Int("shards", 0, "collector shards (0 = 2×GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable ingest directory (write-ahead log + checkpoints); empty serves in-memory only")
	ckptEvery := flag.Int("checkpoint-every", ldp.DefaultCheckpointEvery, "reports between automatic checkpoints (with -data-dir; 0 disables)")
	fsync := flag.Bool("fsync", false, "fsync every WAL group commit before acknowledging (with -data-dir): survives power loss, not just process crashes")
	commitWindow := flag.Duration("commit-window", 0, "group-commit gathering window (with -data-dir): trades per-append latency for larger WAL commits; durability is unchanged")
	historyKeep := flag.Int("history-keep", 0, "full-resolution window of the checkpoint retention ladder (with -data-dir); older checkpoints coarsen geometrically and GET /snapshot?epoch= serves any retained one; <2 uses the default")
	gzipHistory := flag.Bool("gzip-history", false, "gzip checkpoint payloads and closed retained WAL segments (with -data-dir)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this side address (never the main listener); empty disables")
	slowReq := flag.Duration("slow-request", 0, "log a warning for requests slower than this (0 = library default)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpserve " + ldp.VersionString())
		return
	}

	agg, err := mechflag.Build(*mech, *n, *eps, *stratPath, *oraclePath)
	if err != nil {
		fatal(err)
	}
	// The identity /healthz and every snapshot frame declare: mechanism name,
	// domain, ε, and (for strategy matrices, where those three cannot tell
	// two matrices apart) the digest of the exact channel — what lets clients
	// and ldpfed reject a mismatched or stale shard at the handshake.
	info := ldp.MechanismInfoOf(agg)
	w, err := ldp.WorkloadByName(*wname, agg.Domain())
	if err != nil {
		fatal(err)
	}
	var copts []ldp.CollectorOption
	if *dataDir != "" {
		copts = append(copts, ldp.WithDurability(*dataDir,
			ldp.CheckpointEvery(*ckptEvery), ldp.FsyncEachCommit(*fsync),
			ldp.CommitWindow(*commitWindow), ldp.HistoryKeep(*historyKeep),
			ldp.GzipHistory(*gzipHistory)))
	}
	col, err := ldp.NewCollector(agg, w, *shards, copts...)
	if err != nil {
		fatal(err)
	}
	if st, ok := col.Durability(); ok {
		fmt.Printf("ldpserve: durable ingest in %s (fsync=%v): recovered %d reports (%d WAL records replayed, %d torn tail bytes dropped, checkpoint seq %d)\n",
			*dataDir, st.Fsync, st.RecoveredReports, st.ReplayedRecords, st.DroppedTailBytes, st.CheckpointSeq)
	}
	svc, err := ldp.NewCollectorService(col, info, ldp.WithSlowRequestThreshold(*slowReq))
	if err != nil {
		fatal(err)
	}
	if *debugAddr != "" {
		// pprof registers on the default mux at import; serving it on a
		// separate listener keeps profiles off the public surface.
		go func() {
			dsrv := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "ldpserve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("ldpserve: pprof debug listener on %s\n", *debugAddr)
	}

	// Full server-side timeouts: a stalled or hostile peer cannot hold a
	// connection open forever, and request bodies are already bounded by the
	// transport's MaxBytesReader. The read/write budgets are generous — a
	// snapshot of a wide mechanism is a large frame on a slow link.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 16,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("ldpserve: %s (n=%d, ε=%g) with %d shards on %s\n",
		info.Mechanism, info.Domain, info.Epsilon, col.Shards(), *listen)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: new ingest is refused with a retryable 503 (clients
	// keep their keyed batches and land them on another shard or a restart)
	// while /readyz flips not-ready for the router tier; in-flight ingests
	// finish; the final count is logged so an operator can reconcile
	// against their drivers.
	svc.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		// A final checkpoint makes the next start replay-free; even if it
		// fails, the WAL already holds every acknowledged report.
		if err := col.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "ldpserve: final checkpoint failed (WAL remains authoritative): %v\n", err)
		}
		if err := col.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ldpserve: close durable store: %v\n", err)
		}
	}
	fmt.Printf("ldpserve: drained with %d reports collected\n", int(col.Count()))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ldpserve: %v\n", err)
	os.Exit(1)
}
