package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchfix"
)

// BenchResult is one micro-benchmark's measurement in BENCH_optimizer.json.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchFile is the schema of BENCH_optimizer.json. Successive PRs append
// nothing — each run overwrites the file; the git history is the trajectory.
type BenchFile struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Timestamp  string        `json:"timestamp"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// runBenchSuite measures the optimizer hot path with testing.Benchmark and
// writes the results to path as JSON (and a human-readable table to out).
// The benchmark bodies live in internal/benchfix, shared with bench_test.go,
// so the JSON trajectory and `go test -bench` always measure the same code.
func runBenchSuite(out io.Writer, path string) error {
	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"OptimizeEndToEnd/n=16", benchfix.Optimize(16)},
		{"OptimizeEndToEnd/n=64", benchfix.Optimize(64)},
		{"ObjectiveGrad/n=64", benchfix.ObjectiveGrad(64)},
		{"ProjectMatrixInto/n=64", benchfix.Projection(64)},
		{"MulAtB/m=256_n=64", benchfix.MulAtB(256, 64)},
		{"CollectorIngest/sharded-g=1", benchfix.CollectorIngest(1, 0)},
		{"CollectorIngest/sharded-g=4", benchfix.CollectorIngest(4, 0)},
		{"CollectorIngest/sharded-g=8", benchfix.CollectorIngest(8, 0)},
		{"CollectorIngest/mutex-g=1", benchfix.CollectorIngest(1, 1)},
		{"CollectorIngest/mutex-g=4", benchfix.CollectorIngest(4, 1)},
		{"CollectorIngest/mutex-g=8", benchfix.CollectorIngest(8, 1)},
		{"SnapshotCached/hit", benchfix.SnapshotCached(true)},
		{"SnapshotCached/miss", benchfix.SnapshotCached(false)},
		{"OLHAbsorb/candidates/n=1024", benchfix.OLHAbsorb(true, 1024)},
		{"OLHAbsorb/scan/n=1024", benchfix.OLHAbsorb(false, 1024)},
		{"WALAppend/batch64-memory", benchfix.WALAppend("memory", 64)},
		{"WALAppend/batch64-buffered", benchfix.WALAppend("buffered", 64)},
		{"WALAppend/batch64-fsync", benchfix.WALAppend("fsync", 64)},
		{"WALAppend/batch4096-memory", benchfix.WALAppend("memory", 4096)},
		{"WALAppend/batch4096-buffered", benchfix.WALAppend("buffered", 4096)},
		{"WALAppend/batch4096-fsync", benchfix.WALAppend("fsync", 4096)},
		{"RecoverReplay/records=256x64", benchfix.RecoverReplay()},
		{"SnapAt/raw", benchfix.SnapAt(false)},
		{"SnapAt/gzip", benchfix.SnapAt(true)},
		{"CheckpointStream/raw", benchfix.CheckpointStream(false)},
		{"CheckpointStream/gzip", benchfix.CheckpointStream(true)},
		{"PoolAnswerBatch/shared", benchfix.PoolAnswerBatch(true)},
		{"PoolAnswerBatch/naive", benchfix.PoolAnswerBatch(false)},
		{"MetricsHotPath", benchfix.MetricsHotPath()},
	}
	file := BenchFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Fprintf(out, "%-28s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, bm := range suite {
		r := testing.Benchmark(bm.fn)
		res := BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		file.Benchmarks = append(file.Benchmarks, res)
		fmt.Fprintf(out, "%-28s %14.0f %12d %12d\n", res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", path)
	return nil
}

// gateBenchmarks pins the hot-path subset that the CI regression gate
// re-measures against the committed BENCH_optimizer.json. Only fast
// benchmarks belong here (the gate runs every one at testing.Benchmark's
// default 1 s calibration): the optimizer inner loop, the kernels under it,
// the snapshot fast path, and the pooled batch-answer path this gate exists
// to protect.
var gateBenchmarks = []string{
	"ObjectiveGrad/n=64",
	"ProjectMatrixInto/n=64",
	"MulAtB/m=256_n=64",
	"SnapshotCached/hit",
	"OLHAbsorb/candidates/n=1024",
	"WALAppend/batch64-memory",
	"PoolAnswerBatch/shared",
	"SnapAt/raw",
	"CheckpointStream/raw",
	"MetricsHotPath",
}

// gateNsSlack is how much slower (ratio) a gated benchmark may measure
// before the gate fails. CI machines are noisy; 25% headroom filters the
// noise while still catching a real hot-path regression. Allocations get no
// slack — allocs/op is deterministic, so any increase is a genuine change.
const gateNsSlack = 1.25

// runBenchGate re-measures the pinned hot-path benchmarks and compares them
// against the committed baseline at path: fail on ns/op more than gateNsSlack
// above the baseline, or on any allocs/op increase. A baseline entry that has
// no current benchmark (or vice versa) fails too — the pin list and the
// baseline must move together.
func runBenchGate(out io.Writer, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchgate: reading baseline: %w", err)
	}
	var base BenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	baseline := make(map[string]BenchResult, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	suite := map[string]func(b *testing.B){
		"ObjectiveGrad/n=64":          benchfix.ObjectiveGrad(64),
		"ProjectMatrixInto/n=64":      benchfix.Projection(64),
		"MulAtB/m=256_n=64":           benchfix.MulAtB(256, 64),
		"SnapshotCached/hit":          benchfix.SnapshotCached(true),
		"OLHAbsorb/candidates/n=1024": benchfix.OLHAbsorb(true, 1024),
		"WALAppend/batch64-memory":    benchfix.WALAppend("memory", 64),
		"PoolAnswerBatch/shared":      benchfix.PoolAnswerBatch(true),
		"SnapAt/raw":                  benchfix.SnapAt(false),
		"CheckpointStream/raw":        benchfix.CheckpointStream(false),
		"MetricsHotPath":              benchfix.MetricsHotPath(),
	}
	fmt.Fprintf(out, "%-28s %14s %14s %8s %12s %12s\n",
		"benchmark", "base ns/op", "now ns/op", "ratio", "base allocs", "now allocs")
	var failures []string
	for _, name := range gateBenchmarks {
		want, ok := baseline[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from baseline %s (regenerate with -exp bench)", name, path))
			continue
		}
		fn, ok := suite[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: pinned but not in the gate suite", name))
			continue
		}
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		allocs := r.AllocsPerOp()
		ratio := ns / want.NsPerOp
		fmt.Fprintf(out, "%-28s %14.0f %14.0f %7.2fx %12d %12d\n",
			name, want.NsPerOp, ns, ratio, want.AllocsPerOp, allocs)
		if ratio > gateNsSlack {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.2fx the baseline %.0f (limit %.2fx)",
				name, ns, ratio, want.NsPerOp, gateNsSlack))
		}
		if allocs > want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d (no slack on allocations)",
				name, allocs, want.AllocsPerOp))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "FAIL %s\n", f)
		}
		return fmt.Errorf("benchgate: %d regression(s) against %s", len(failures), path)
	}
	fmt.Fprintf(out, "benchgate: %d benchmarks within limits of %s\n", len(gateBenchmarks), path)
	return nil
}
