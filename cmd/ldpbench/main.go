// Command ldpbench regenerates the paper's experiments as text tables and
// tracks the optimizer's performance over time.
//
// Usage:
//
//	ldpbench -exp fig1              # Figure 1: sample complexity vs ε
//	ldpbench -exp fig2              # Figure 2: sample complexity vs n
//	ldpbench -exp fig3a             # Figure 3a: benchmark datasets
//	ldpbench -exp fig3b             # Figure 3b: initialization robustness
//	ldpbench -exp fig3c             # Figure 3c: per-iteration scalability
//	ldpbench -exp fig4              # Figure 4: WNNLS extension
//	ldpbench -exp table1            # Table 1: classical mechanisms as strategies
//	ldpbench -exp all               # everything
//	ldpbench -exp fig1 -full        # paper-scale parameters (slow)
//	ldpbench -exp fig1 -workers 4   # bound the sweep worker pool (0 = all CPUs)
//	ldpbench -exp bench             # optimizer micro-benchmarks → BENCH_optimizer.json
//	ldpbench -exp benchgate         # hot-path regression gate vs BENCH_optimizer.json
//
// The bench experiment measures the optimizer hot path (end-to-end optimize,
// objective+gradient, projection, parallel matmul) with ns/op, B/op and
// allocs/op, and writes a machine-readable JSON file (-benchjson sets the
// path) so successive PRs have a perf trajectory to compare against.
package main

import (
	"flag"
	"fmt"
	"os"

	ldp "repro"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1, fig2, fig3a, fig3b, fig3c, fig4, table1, bench, benchgate, all")
	full := flag.Bool("full", false, "paper-scale parameters (much slower)")
	seed := flag.Int64("seed", 0, "random seed")
	iters := flag.Int("iters", 0, "optimizer iterations (0 = default)")
	alpha := flag.Float64("alpha", 0.01, "target normalized variance for sample complexity")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = one per CPU, 1 = serial)")
	benchJSON := flag.String("benchjson", "BENCH_optimizer.json", "output path for -exp bench results")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("ldpbench " + ldp.VersionString())
		return
	}

	cfg := experiments.Config{Alpha: *alpha, Full: *full, Seed: *seed, Iters: *iters, Workers: *workers}
	out := os.Stdout

	run := func(name string) error {
		switch name {
		case "fig1":
			fmt.Fprintln(out, "== Figure 1: sample complexity vs epsilon ==")
			sweeps, err := experiments.FigureEpsilon(cfg)
			if err != nil {
				return err
			}
			experiments.WriteSweeps(out, sweeps, "epsilon")
			sum := experiments.Improvements(sweeps)
			fmt.Fprintf(out, "\nOptimized vs best competitor: ratio %.2fx to %.2fx (losses beyond 5%%: %d)\n",
				sum.MinRatio, sum.MaxRatio, sum.Losses)
		case "fig2":
			fmt.Fprintln(out, "== Figure 2: sample complexity vs domain size ==")
			sweeps, err := experiments.FigureDomain(cfg)
			if err != nil {
				return err
			}
			experiments.WriteSweeps(out, sweeps, "domain n")
		case "fig3a":
			fmt.Fprintln(out, "== Figure 3a: sample complexity on benchmark datasets (Prefix) ==")
			rows, err := experiments.FigureDatasets(cfg)
			if err != nil {
				return err
			}
			experiments.WriteDatasets(out, rows)
		case "fig3b":
			fmt.Fprintln(out, "== Figure 3b: initialization robustness (variance ratio to best found) ==")
			pts, err := experiments.FigureInit(cfg)
			if err != nil {
				return err
			}
			experiments.WriteInit(out, pts)
		case "fig3c":
			fmt.Fprintln(out, "== Figure 3c: per-iteration optimization time ==")
			pts, err := experiments.FigureScalability(cfg)
			if err != nil {
				return err
			}
			experiments.WriteScalability(out, pts)
		case "fig4":
			fmt.Fprintln(out, "== Figure 4: WNNLS extension (normalized variance) ==")
			rows, err := experiments.FigureWNNLS(cfg)
			if err != nil {
				return err
			}
			experiments.WriteWNNLS(out, rows)
		case "table1":
			fmt.Fprintln(out, "== Table 1: classical mechanisms as strategy matrices ==")
			n := 8
			if cfg.Full {
				n = 16
			}
			rows, err := experiments.Table1(n, 1.0)
			if err != nil {
				return err
			}
			experiments.WriteTable1(out, rows)
		case "bench":
			fmt.Fprintln(out, "== Optimizer micro-benchmarks ==")
			if err := runBenchSuite(out, *benchJSON); err != nil {
				return err
			}
		case "benchgate":
			fmt.Fprintln(out, "== Bench regression gate ==")
			if err := runBenchGate(out, *benchJSON); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig4"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "ldpbench: %v\n", err)
			os.Exit(1)
		}
	}
}
