package ldp_test

import (
	"context"
	"path/filepath"
	"testing"

	ldp "repro"
)

// A keyed retry that crosses a router restart must land on the shard that
// first absorbed the key. Without the binding log the rebuilt fleet would
// rotate the key onto whichever shard its fresh round-robin picks — a shard
// whose idempotency cache never saw the key, which would absorb the batch a
// second time. With the log, the binding replays on open and the retry hits
// the original shard's idempotency cache instead.
func TestFleetBindingLogSurvivesRestart(t *testing.T) {
	const domain = 8
	path := filepath.Join(t.TempDir(), "bindings.log")
	agg, w, shards := fleetFixture(t, domain, 2)
	ctx := context.Background()
	reports := []ldp.Report{{Index: 1}, {Index: 2}, {Index: 3}}

	f1, err := ldp.NewFleet(agg, w,
		ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)),
		ldp.WithFleetBindingLog(path))
	if err != nil {
		t.Fatal(err)
	}
	registerAll(t, ctx, f1, shards)
	if n, err := f1.IngestKeyed(ctx, reports, "sticky-key"); err != nil || n != len(reports) {
		t.Fatalf("first keyed ingest = (%d, %v)", n, err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	var bound, other *fleetShard
	for _, sh := range shards {
		if sh.col.Count() > 0 {
			bound = sh
		} else {
			other = sh
		}
	}
	if bound == nil || other == nil {
		t.Fatalf("expected the batch on exactly one shard, counts %v/%v",
			shards[0].col.Count(), shards[1].col.Count())
	}

	// "Restart": a new fleet over the same log, shards registered in the
	// opposite order so a fresh round-robin pick would choose the other shard.
	f2, err := ldp.NewFleet(agg, w,
		ldp.WithFleetRetryPolicy(fastRetryPolicy(2, nil)),
		ldp.WithFleetBindingLog(path))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.Register(ctx, other.hs.URL); err != nil {
		t.Fatal(err)
	}
	if err := f2.Register(ctx, bound.hs.URL); err != nil {
		t.Fatal(err)
	}

	// The retry: same key, same batch. The replayed binding must route it to
	// the original shard, whose idempotency cache replays instead of
	// re-absorbing.
	if n, err := f2.IngestKeyed(ctx, reports, "sticky-key"); err != nil || n != len(reports) {
		t.Fatalf("retry across restart = (%d, %v)", n, err)
	}
	if got := bound.col.Count(); got != float64(len(reports)) {
		t.Fatalf("bound shard count %v after the retry, want %d (double absorb?)", got, len(reports))
	}
	if got := other.col.Count(); got != 0 {
		t.Fatalf("retry leaked %v reports onto the other shard", got)
	}

	// A fresh key on the restarted fleet routes and binds normally.
	if n, err := f2.IngestKeyed(ctx, reports, "new-key"); err != nil || n != len(reports) {
		t.Fatalf("fresh key after restart = (%d, %v)", n, err)
	}
	total := shards[0].col.Count() + shards[1].col.Count()
	if total != float64(2*len(reports)) {
		t.Fatalf("fleet holds %v reports, want %d", total, 2*len(reports))
	}
}
