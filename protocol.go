package ldp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/protocol"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// Report is the single wire format every mechanism's client report travels
// in: strategy-matrix mechanisms fill Index, OLH fills Seed+Index, unary
// encoding (OUE/RAPPOR) fills Bits. The struct is flat and gob/JSON-friendly,
// so any transport can carry it.
type Report = protocol.Report

// Randomizer is the client side of the streaming protocol: it encodes one
// user's true type into a randomized Report. Both mechanism families
// implement it — build one from an optimized strategy with NewRandomizer, or
// use a FrequencyOracle directly (oracles are their own Randomizer).
type Randomizer = protocol.Randomizer

// Aggregator is the server side of the streaming protocol: it folds reports
// into a mergeable accumulator and converts accumulators into unbiased
// per-type count estimates. Build one from an optimized strategy with
// NewAggregator, or use a FrequencyOracle directly.
type Aggregator = protocol.Aggregator

// EpsValidationTol is the single ε-validation tolerance used everywhere a
// strategy crosses a trust boundary (NewRandomizer, LoadStrategy). Because
// every entry point shares it, a strategy that loads is always accepted by
// the client that randomizes through it.
const EpsValidationTol = strategy.DefaultValidateTol

// NewRandomizer adapts an optimized strategy to the protocol's client side.
// The strategy is validated against its declared ε (to EpsValidationTol)
// before use: a client must never randomize through a matrix that does not
// actually provide the promised privacy.
func NewRandomizer(s *Strategy) (Randomizer, error) {
	r, err := strategy.NewRandomizer(s)
	if err != nil {
		return nil, fmt.Errorf("ldp: %w", err)
	}
	return r, nil
}

// NewAggregator adapts an optimized strategy to the protocol's server side,
// precomputing the optimal reconstruction B = (QᵀD⁻¹Q)⁺QᵀD⁻¹ (Theorem 3.10).
func NewAggregator(s *Strategy) (Aggregator, error) {
	a, err := strategy.NewAggregator(s)
	if err != nil {
		return nil, fmt.Errorf("ldp: %w", err)
	}
	return a, nil
}

// Client is the user-side half of the LDP protocol for any mechanism.
// Randomize is the only thing that ever touches a user's true type, and its
// output is safe to send to an untrusted collector — that is the LDP
// guarantee.
type Client struct {
	r Randomizer
}

// NewClient wraps a mechanism's randomizer: pass a FrequencyOracle directly,
// or adapt an optimized strategy with NewRandomizer first.
func NewClient(r Randomizer) (*Client, error) {
	if r == nil {
		return nil, errors.New("ldp: nil randomizer")
	}
	return &Client{r: r}, nil
}

// NewStrategyClient is NewRandomizer + NewClient in one step.
//
// Deprecated: kept for pre-streaming-API callers; new code should build the
// Randomizer explicitly so it can be shared with SimulateProtocol.
func NewStrategyClient(s *Strategy) (*Client, error) {
	r, err := NewRandomizer(s)
	if err != nil {
		return nil, err
	}
	return NewClient(r)
}

// Randomize encodes user type u (0 ≤ u < Domain) into one report using the
// supplied randomness source. Client itself satisfies Randomizer.
func (c *Client) Randomize(u int, rng *rand.Rand) (Report, error) {
	return c.r.Randomize(u, rng)
}

// Respond randomizes user type u into a bare output index.
//
// Deprecated: only meaningful for index-carrying mechanisms (strategy
// matrices); use Randomize, which serves every mechanism. Respond panics if
// the underlying randomizer rejects u.
func (c *Client) Respond(u int, rng *rand.Rand) int {
	rep, err := c.r.Randomize(u, rng)
	if err != nil {
		panic(err)
	}
	return rep.Index
}

// Epsilon returns the privacy budget the client's reports satisfy.
func (c *Client) Epsilon() float64 { return c.r.Epsilon() }

// Domain returns the number of user types the client accepts.
func (c *Client) Domain() int { return c.r.Domain() }

// Server is a single-goroutine collector: it absorbs reports into the
// mechanism's accumulator and reconstructs workload answers. For concurrent
// ingestion use Collector, which shards the same state across goroutines.
type Server struct {
	agg   Aggregator
	est   *Estimator
	acc   []float64
	count float64

	// epoch/snapCount implement the monotonic snapshot sequence: the epoch
	// advances exactly when Snap observes a count the previous Snap did not.
	// snapMu guards them so the read side (Snap and the deprecated wrappers
	// over it) stays safe to fan out across goroutines, as the old pure-read
	// methods were — ingestion remains single-goroutine.
	snapMu    sync.Mutex
	epoch     uint64
	snapCount float64
}

// NewServer prepares a collector for the given mechanism aggregator and
// workload. Frequency oracles estimate the full histogram, so any workload
// over their domain is answerable — the same W·x̂ reconstruction used by
// strategy mechanisms.
func NewServer(agg Aggregator, w Workload) (*Server, error) {
	est, err := NewEstimator(agg, w)
	if err != nil {
		return nil, err
	}
	return &Server{agg: agg, est: est, acc: make([]float64, agg.StateLen())}, nil
}

// NewStrategyServer is NewAggregator + NewServer in one step.
//
// Deprecated: kept for pre-streaming-API callers; new code should build the
// Aggregator explicitly so it can be shared with a Collector.
func NewStrategyServer(s *Strategy, w Workload) (*Server, error) {
	agg, err := NewAggregator(s)
	if err != nil {
		return nil, err
	}
	return NewServer(agg, w)
}

// Ingest records one client report.
func (sv *Server) Ingest(r Report) error {
	if err := sv.agg.Absorb(sv.acc, r); err != nil {
		return fmt.Errorf("ldp: %w", err)
	}
	sv.count++
	return nil
}

// IngestBatch records a batch of reports atomically: the whole batch is
// validated before any state changes, so a malformed element leaves the
// server exactly as it was.
func (sv *Server) IngestBatch(reports []Report) error {
	for i, r := range reports {
		if err := sv.agg.Check(r); err != nil {
			return fmt.Errorf("ldp: batch element %d: %w", i, err)
		}
	}
	for _, r := range reports {
		// Check passed, so Absorb cannot fail (the Aggregator contract).
		if err := sv.agg.Absorb(sv.acc, r); err != nil {
			return fmt.Errorf("ldp: validated report failed to absorb: %w", err)
		}
		sv.count++
	}
	return nil
}

// Add records one bare output index.
//
// Deprecated: index-carrying mechanisms only; use Ingest.
func (sv *Server) Add(response int) error {
	return sv.Ingest(Report{Index: response})
}

// AddAll records a batch of bare output indices with the same all-or-nothing
// validation as IngestBatch.
//
// Deprecated: index-carrying mechanisms only; use IngestBatch.
func (sv *Server) AddAll(responses []int) error {
	reports := make([]Report, len(responses))
	for i, r := range responses {
		reports[i] = Report{Index: r}
	}
	return sv.IngestBatch(reports)
}

// Count returns the number of reports collected so far.
func (sv *Server) Count() float64 { return sv.count }

// Snap returns an immutable point-in-time Snapshot of the server: a copy of
// the accumulator, the report count, the mechanism identity, and the
// monotonic snapshot epoch — the same value a Collector or RemoteCollector
// produces, so one Estimator answers any of them.
func (sv *Server) Snap() Snapshot {
	sv.snapMu.Lock()
	if sv.epoch == 0 || sv.count != sv.snapCount {
		sv.epoch++
		sv.snapCount = sv.count
	}
	epoch := sv.epoch
	sv.snapMu.Unlock()
	return NewSnapshot(sv.acc, sv.count, epoch, sv.est.Info())
}

// State returns a copy of the aggregation accumulator (for strategy
// mechanisms, the response histogram y).
//
// Deprecated: use Snap().State().
func (sv *Server) State() []float64 {
	out := make([]float64, len(sv.acc))
	copy(out, sv.acc)
	return out
}

// ResponseVector returns a copy of the aggregated response histogram.
//
// Deprecated: use State, which is defined for every mechanism.
func (sv *Server) ResponseVector() []float64 { return sv.State() }

// DataEstimate returns the unbiased estimate of the data vector (B·y for
// strategy mechanisms, the channel-inverted histogram for oracles).
//
// Deprecated: use an Estimator — NewEstimator(agg, w) then
// est.DataEstimate(sv.Snap()) — which answers local, remote, and merged
// snapshots alike.
func (sv *Server) DataEstimate() []float64 {
	xh, err := sv.est.DataEstimate(sv.Snap())
	if err != nil {
		panic(err) // unreachable: the snapshot comes from this very mechanism
	}
	return xh
}

// Answers returns the unbiased workload answer estimates W·x̂.
//
// Deprecated: use an Estimator — est.Answers(sv.Snap()).
func (sv *Server) Answers() []float64 {
	answers, err := sv.est.Answers(sv.Snap())
	if err != nil {
		panic(err) // unreachable: the snapshot comes from this very mechanism
	}
	return answers
}

// ConsistentAnswers applies WNNLS post-processing (Appendix A): it returns
// workload answers derived from the non-negative data vector closest to the
// unbiased estimate, additionally scaled to the known respondent count.
// Post-processing never weakens the privacy guarantee.
//
// Deprecated: use an Estimator — est.ConsistentAnswers(sv.Snap()).
func (sv *Server) ConsistentAnswers() ([]float64, error) {
	return sv.est.ConsistentAnswers(sv.Snap())
}

// SimulateProtocol runs the complete protocol for any mechanism on an integer
// data vector x (each count is a user) and returns the unbiased workload
// estimates. Strategy mechanisms and frequency oracles run through exactly
// the same path.
func SimulateProtocol(r Randomizer, agg Aggregator, w Workload, x []float64, seed int64) ([]float64, error) {
	p, err := simulate.New(r, agg, w)
	if err != nil {
		return nil, err
	}
	out, err := p.Run(x, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return out.Estimates, nil
}

// SimulateStrategyProtocol is SimulateProtocol for a bare strategy matrix.
//
// Deprecated: kept for pre-streaming-API callers; use SimulateProtocol with
// NewRandomizer/NewAggregator.
func SimulateStrategyProtocol(s *Strategy, w Workload, x []float64, seed int64) ([]float64, error) {
	p, err := simulate.NewProtocol(s, w)
	if err != nil {
		return nil, err
	}
	out, err := p.Run(x, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return out.Estimates, nil
}
