package ldp

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/postprocess"
	"repro/internal/simulate"
	"repro/internal/strategy"
)

// Client is the user-side randomizer of the LDP protocol: it holds a strategy
// matrix and produces one randomized response per user. Respond is the only
// thing that ever touches a user's true type, and its output is safe to send
// to an untrusted collector — that is the LDP guarantee.
type Client struct {
	sampler *strategy.Sampler
	eps     float64
}

// NewClient prepares a client for the given strategy. The strategy is
// validated against its declared ε before use: a client must never randomize
// through a matrix that does not actually provide the promised privacy.
func NewClient(s *Strategy) (*Client, error) {
	if err := s.Validate(1e-7); err != nil {
		return nil, fmt.Errorf("ldp: refusing to build client: %w", err)
	}
	sp, err := strategy.NewSampler(s)
	if err != nil {
		return nil, err
	}
	return &Client{sampler: sp, eps: s.Eps}, nil
}

// Respond randomizes user type u (0 ≤ u < Domain) into an output index using
// the supplied randomness source.
func (c *Client) Respond(u int, rng *rand.Rand) int {
	return c.sampler.Sample(u, rng)
}

// Epsilon returns the privacy budget the client's responses satisfy.
func (c *Client) Epsilon() float64 { return c.eps }

// Domain returns the number of user types the client accepts.
func (c *Client) Domain() int { return c.sampler.Domain() }

// Outputs returns the size of the response range.
func (c *Client) Outputs() int { return c.sampler.Outputs() }

// Server is the collector side: it aggregates randomized responses into the
// response vector y and reconstructs workload answers.
type Server struct {
	strategy *Strategy
	work     Workload
	recon    *linalg.Matrix // B = (QᵀD⁻¹Q)⁺QᵀD⁻¹
	y        []float64
	count    float64
}

// NewServer prepares a collector for the given strategy and workload.
func NewServer(s *Strategy, w Workload) (*Server, error) {
	if s.Domain() != w.Domain() {
		return nil, fmt.Errorf("ldp: strategy domain %d != workload domain %d", s.Domain(), w.Domain())
	}
	b, err := s.ReconFactor()
	if err != nil {
		return nil, err
	}
	return &Server{strategy: s, work: w, recon: b, y: make([]float64, s.Outputs())}, nil
}

// Add records one client response.
func (sv *Server) Add(response int) error {
	if response < 0 || response >= len(sv.y) {
		return fmt.Errorf("ldp: response %d out of range [0, %d)", response, len(sv.y))
	}
	sv.y[response]++
	sv.count++
	return nil
}

// AddAll records a batch of client responses.
func (sv *Server) AddAll(responses []int) error {
	for _, r := range responses {
		if err := sv.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of responses collected so far.
func (sv *Server) Count() float64 { return sv.count }

// ResponseVector returns a copy of the aggregated response histogram y.
func (sv *Server) ResponseVector() []float64 { return linalg.CloneVec(sv.y) }

// DataEstimate returns B·y, the unbiased estimate of the data vector within
// the workload's row space.
func (sv *Server) DataEstimate() []float64 { return sv.recon.MulVec(sv.y) }

// Answers returns the unbiased workload answer estimates V·y = W·(B·y).
func (sv *Server) Answers() []float64 {
	return sv.work.MatVec(sv.DataEstimate())
}

// ConsistentAnswers applies WNNLS post-processing (Appendix A): it returns
// workload answers derived from the non-negative data vector closest to the
// unbiased estimate, additionally scaled to the known respondent count.
// Post-processing never weakens the privacy guarantee.
func (sv *Server) ConsistentAnswers() ([]float64, error) {
	res, err := postprocess.Run(sv.work, sv.Answers(), postprocess.Options{TotalCount: sv.count})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// Protocol simulation — used by examples, the experiment harness, and tests.

// SimulateProtocol runs the complete protocol on an integer data vector x
// (each count is a user) and returns the unbiased workload estimates.
func SimulateProtocol(s *Strategy, w Workload, x []float64, seed int64) ([]float64, error) {
	p, err := simulate.NewProtocol(s, w)
	if err != nil {
		return nil, err
	}
	out, err := p.Run(x, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return out.Estimates, nil
}

// strategyWire is the gob wire format for strategies.
type strategyWire struct {
	Rows, Cols int
	Eps        float64
	Data       []float64
}

// SaveStrategy serializes an optimized strategy (gob encoding), so the
// expensive offline optimization can be done once and shipped to clients.
func SaveStrategy(w io.Writer, s *Strategy) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(strategyWire{
		Rows: s.Q.Rows(),
		Cols: s.Q.Cols(),
		Eps:  s.Eps,
		Data: s.Q.Data(),
	})
}

// LoadStrategy deserializes a strategy written by SaveStrategy and validates
// its LDP guarantee before returning it.
func LoadStrategy(r io.Reader) (*Strategy, error) {
	var wire strategyWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ldp: decode strategy: %w", err)
	}
	if wire.Rows <= 0 || wire.Cols <= 0 || len(wire.Data) != wire.Rows*wire.Cols {
		return nil, fmt.Errorf("ldp: corrupt strategy: %dx%d with %d values", wire.Rows, wire.Cols, len(wire.Data))
	}
	s := strategy.New(linalg.NewFrom(wire.Rows, wire.Cols, wire.Data), wire.Eps)
	if err := s.Validate(1e-6); err != nil {
		return nil, fmt.Errorf("ldp: loaded strategy invalid: %w", err)
	}
	return s, nil
}
