package ldp_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	ldp "repro"
)

func TestCollectorConcurrentAdds(t *testing.T) {
	n := 8
	w := ldp.Histogram(n)
	mech, err := ldp.Optimize(w, 2.0, &ldp.OptimizeOptions{Iters: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	server, err := ldp.NewServer(mech.Strategy(), w)
	if err != nil {
		t.Fatal(err)
	}
	col := ldp.NewCollector(server)
	client, err := ldp.NewClient(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				if err := col.Add(client.Respond(rng.Intn(n), rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := col.Count(); got != goroutines*perG {
		t.Fatalf("count = %v, want %d", got, goroutines*perG)
	}
	if ans := col.Answers(); len(ans) != n {
		t.Fatal("answers shape wrong")
	}
	cons, err := col.ConsistentAnswers()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range cons {
		if v < -1e-9 {
			t.Fatalf("consistent answer %v negative", v)
		}
		total += v
	}
	if math.Abs(total-goroutines*perG) > 1e-6 {
		t.Fatalf("consistent total %v, want %d", total, goroutines*perG)
	}
}

func TestCollectorAddBatch(t *testing.T) {
	n := 4
	w := ldp.Histogram(n)
	mech, err := ldp.Optimize(w, 2.0, &ldp.OptimizeOptions{Iters: 30, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	server, err := ldp.NewServer(mech.Strategy(), w)
	if err != nil {
		t.Fatal(err)
	}
	col := ldp.NewCollector(server)
	if err := col.AddBatch([]int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 4 {
		t.Fatalf("count = %v", col.Count())
	}
	if err := col.AddBatch([]int{0, 99999}); err == nil {
		t.Fatal("expected error for out-of-range response in batch")
	}
}

func TestProductWorkloadFacade(t *testing.T) {
	p := ldp.Product(ldp.AllRange(4), ldp.AllRange(4))
	if p.Domain() != 16 || p.Queries() != 100 {
		t.Fatalf("2-D range workload shape: n=%d p=%d", p.Domain(), p.Queries())
	}
	mech, err := ldp.Optimize(p, 1.0, &ldp.OptimizeOptions{Iters: 60, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := mech.Strategy().Validate(1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeForPriorFacade(t *testing.T) {
	n := 8
	w := ldp.Histogram(n)
	prior := make([]float64, n)
	prior[0], prior[1] = 0.7, 0.3
	mech, err := ldp.OptimizeForPrior(w, 1.0, prior, &ldp.OptimizeOptions{Iters: 150, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if mech.Name() != "Optimized (prior)" {
		t.Fatalf("name = %q", mech.Name())
	}
	vp, err := ldp.Evaluate(mech, w)
	if err != nil {
		t.Fatal(err)
	}
	// Concentrated types must enjoy lower variance than the ignored tail.
	if vp.PerUser[0] >= vp.PerUser[n-1] {
		t.Fatalf("prior-favored type variance %v not below tail %v", vp.PerUser[0], vp.PerUser[n-1])
	}
}

func TestOptimizeBestFacade(t *testing.T) {
	w := ldp.Prefix(8)
	mech, err := ldp.OptimizeBest(w, 1.0, &ldp.OptimizeOptions{Iters: 80, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	optSC, err := ldp.SampleComplexity(mech, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Must beat (or match) every factorization competitor even at this tiny
	// iteration budget — that is OptimizeBest's contract.
	ms, err := ldp.Competitors(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Name() == "Matrix Mechanism (L1)" || m.Name() == "Matrix Mechanism (L2)" {
			continue // additive mechanisms are not warm-start candidates
		}
		sc, err := ldp.SampleComplexity(m, w, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if optSC > sc*1.05 {
			t.Fatalf("OptimizeBest (%v) worse than %s (%v)", optSC, m.Name(), sc)
		}
	}
}
