package ldp_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	ldp "repro"
)

// buildStrategyPipeline optimizes a small mechanism and returns its two
// protocol halves.
func buildStrategyPipeline(t *testing.T, n int, eps float64, seed int64) (ldp.Randomizer, ldp.Aggregator, ldp.Workload) {
	t.Helper()
	w := ldp.Histogram(n)
	mech, err := ldp.Optimize(context.Background(), w, eps,
		ldp.WithIterations(40), ldp.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	return rz, agg, w
}

func TestCollectorConcurrentIngest(t *testing.T) {
	n := 8
	rz, agg, w := buildStrategyPipeline(t, n, 2.0, 21)
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	client, err := ldp.NewClient(rz)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			h := col.Handle() // half pinned, half round-robin
			for i := 0; i < perG; i++ {
				rep, err := client.Randomize(rng.Intn(n), rng)
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					err = h.Ingest(rep)
				} else {
					err = col.Ingest(rep)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := col.Count(); got != goroutines*perG {
		t.Fatalf("count = %v, want %d", got, goroutines*perG)
	}
	if ans := col.Answers(); len(ans) != n {
		t.Fatal("answers shape wrong")
	}
	cons, err := col.ConsistentAnswers()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range cons {
		if v < -1e-9 {
			t.Fatalf("consistent answer %v negative", v)
		}
		total += v
	}
	if math.Abs(total-goroutines*perG) > 1e-6 {
		t.Fatalf("consistent total %v, want %d", total, goroutines*perG)
	}
}

// TestShardedMatchesSerial feeds the identical report stream to a
// single-goroutine Server and to a sharded Collector under heavy concurrency;
// the merged shard state must equal the serial state exactly (accumulator
// entries are integer counts, so float addition commutes without error).
func TestShardedMatchesSerial(t *testing.T) {
	n := 16
	rz, agg, w := buildStrategyPipeline(t, n, 1.0, 31)

	rng := rand.New(rand.NewSource(99))
	const total = 6000
	reports := make([]ldp.Report, total)
	for i := range reports {
		rep, err := rz.Randomize(rng.Intn(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}

	server, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if err := server.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}

	col, err := ldp.NewCollector(agg, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := col.Handle()
			for i := g; i < total; i += goroutines {
				if err := h.Ingest(reports[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if col.Count() != server.Count() {
		t.Fatalf("count: sharded %v, serial %v", col.Count(), server.Count())
	}
	ss, cs := server.State(), col.State()
	for i := range ss {
		if ss[i] != cs[i] {
			t.Fatalf("state[%d]: sharded %v, serial %v", i, cs[i], ss[i])
		}
	}
	sd, cd := server.DataEstimate(), col.DataEstimate()
	for i := range sd {
		if math.Abs(sd[i]-cd[i]) > 1e-9 {
			t.Fatalf("estimate[%d]: sharded %v, serial %v", i, cd[i], sd[i])
		}
	}
}

// TestCollectorBatchAtomicity is the regression test for the partially
// applied batch bug: a batch with an out-of-range element must leave the
// collector (and server) state completely untouched.
// Regression test for the snapshot cache: repeated reads of a quiescent
// collector must return identical estimates (served from cache, not a fresh
// merge gone wrong), every ingest must invalidate the cache so the next read
// sees the new report, and the cached read path must match a cache-free
// reference (a single-goroutine Server fed the same reports) exactly.
func TestCollectorSnapshotCache(t *testing.T) {
	rz, agg, w := buildStrategyPipeline(t, 8, 1.0, 17)
	col, err := ldp.NewCollector(agg, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	ingestOne := func() {
		rep, err := rz.Randomize(rng.Intn(8), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Ingest(rep); err != nil {
			t.Fatal(err)
		}
		if err := ref.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	equal := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) == len(b)
	}
	for i := 0; i < 100; i++ {
		ingestOne()
		// Several reads per write: all but the first hit the cache.
		first, _ := col.Snapshot()
		for j := 0; j < 3; j++ {
			again, count := col.Snapshot()
			if count != float64(i+1) || !equal(first, again) {
				t.Fatalf("step %d: cached snapshot diverged", i)
			}
		}
		if !equal(first, ref.State()) {
			t.Fatalf("step %d: cached snapshot != cache-free reference", i)
		}
		if !equal(col.DataEstimate(), ref.DataEstimate()) {
			t.Fatalf("step %d: estimates diverged", i)
		}
	}
	// The snapshot is caller-owned: scribbling on it must not poison the
	// cache behind later reads.
	st, _ := col.Snapshot()
	for i := range st {
		st[i] = -1
	}
	if again, _ := col.Snapshot(); !equal(again, ref.State()) {
		t.Fatal("mutating a returned snapshot corrupted the cache")
	}
}

// The cache must stay coherent under concurrent ingest: interleaved
// snapshots may lag writers but can never invent or lose reports, and once
// writers stop the snapshot equals the serial reference. Run under -race in
// CI.
func TestCollectorSnapshotCacheConcurrent(t *testing.T) {
	rz, agg, w := buildStrategyPipeline(t, 8, 1.0, 19)
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 500
	reports := make([][]ldp.Report, writers)
	rng := rand.New(rand.NewSource(20))
	for i := range reports {
		reports[i] = make([]ldp.Report, perWriter)
		for j := range reports[i] {
			rep, err := rz.Randomize(rng.Intn(8), rng)
			if err != nil {
				t.Fatal(err)
			}
			reports[i][j] = rep
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A polling reader hammers the cached read path while writers ingest.
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, count := col.Snapshot()
			var mass float64
			for _, v := range st {
				mass += v
			}
			// Strategy accumulators hold one histogram increment per
			// report, so mass must equal the count the snapshot claims —
			// a torn or half-merged view would break this.
			if math.Abs(mass-count) > 1e-9 {
				readerErr <- nil
				return
			}
		}
	}()
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(batch []ldp.Report) {
			defer wg.Done()
			h := col.Handle()
			for _, rep := range batch {
				if err := h.Ingest(rep); err != nil {
					t.Error(err)
					return
				}
			}
		}(reports[i])
	}
	wg.Wait()
	close(stop)
	if _, torn := <-readerErr; torn {
		t.Fatal("snapshot exposed a torn view (state mass != count)")
	}

	ref, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range reports {
		if err := ref.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	st, count := col.Snapshot()
	if count != writers*perWriter {
		t.Fatalf("count %v, want %d", count, writers*perWriter)
	}
	refSt := ref.State()
	for i := range refSt {
		if st[i] != refSt[i] {
			t.Fatalf("state[%d]: concurrent %v != serial %v", i, st[i], refSt[i])
		}
	}
}

func TestCollectorBatchAtomicity(t *testing.T) {
	n := 4
	_, agg, w := buildStrategyPipeline(t, n, 2.0, 22)
	col, err := ldp.NewCollector(agg, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.AddBatch([]int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 4 {
		t.Fatalf("count = %v", col.Count())
	}
	before := col.State()
	// Valid prefix, invalid tail: nothing of the batch may be applied.
	if err := col.AddBatch([]int{0, 1, 99999}); err == nil {
		t.Fatal("expected error for out-of-range response in batch")
	}
	if col.Count() != 4 {
		t.Fatalf("failed batch mutated count: %v", col.Count())
	}
	after := col.State()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("failed batch mutated state[%d]: %v -> %v", i, before[i], after[i])
		}
	}
	// Same contract on the single-goroutine Server.
	server, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.AddAll([]int{1, 99999}); err == nil {
		t.Fatal("expected error")
	}
	if server.Count() != 0 {
		t.Fatalf("failed batch mutated server count: %v", server.Count())
	}
	// Handle batches share the validation path.
	h := col.Handle()
	if err := h.IngestBatch([]ldp.Report{{Index: 2}, {Index: -1}}); err == nil {
		t.Fatal("expected error")
	}
	if col.Count() != 4 {
		t.Fatalf("failed handle batch mutated count: %v", col.Count())
	}
	if err := h.IngestBatch([]ldp.Report{{Index: 2}, {Index: 3}}); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 6 {
		t.Fatalf("count = %v, want 6", col.Count())
	}
}

// TestOraclesThroughPipeline is the acceptance test for the unified protocol:
// OUE, OLH and RAPPOR each run through the same streaming
// Client/Server/Collector pipeline as optimized strategies — concurrent
// sharded ingestion included — and recover the histogram.
func TestOraclesThroughPipeline(t *testing.T) {
	n := 16
	const users = 4000
	x := make([]float64, n)
	x[1], x[5], x[8] = 2000, 1500, 500
	w := ldp.Histogram(n)
	truth := w.MatVec(x)

	oracles := make([]ldp.FrequencyOracle, 0, 3)
	for _, mk := range []func(int, float64) (ldp.FrequencyOracle, error){
		ldp.NewOUE, ldp.NewOLH, ldp.NewRAPPOROracle,
	} {
		o, err := mk(n, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}

	for _, o := range oracles {
		t.Run(o.Name(), func(t *testing.T) {
			client, err := ldp.NewClient(o) // an oracle is its own Randomizer
			if err != nil {
				t.Fatal(err)
			}
			col, err := ldp.NewCollector(o, w, 0) // ... and its own Aggregator
			if err != nil {
				t.Fatal(err)
			}
			// Users arrive over 4 concurrent handler goroutines.
			const goroutines = 4
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					h := col.Handle()
					for u := 0; u < n; u++ {
						for j := g; j < int(x[u]); j += goroutines {
							rep, err := client.Randomize(u, rng)
							if err != nil {
								t.Error(err)
								return
							}
							if err := h.Ingest(rep); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			if col.Count() != users {
				t.Fatalf("count = %v, want %d", col.Count(), users)
			}
			est := col.Answers()
			// Noise floor at ε=4, N=4000: well under 300 per cell for every
			// oracle here.
			for i := range truth {
				if math.Abs(est[i]-truth[i]) > 300 {
					t.Fatalf("%s: answer[%d] = %v, truth %v", o.Name(), i, est[i], truth[i])
				}
			}
			cons, err := col.ConsistentAnswers()
			if err != nil {
				t.Fatal(err)
			}
			total := 0.0
			for _, v := range cons {
				total += v
			}
			if math.Abs(total-users) > 1e-6 {
				t.Fatalf("%s: consistent total %v, want %d", o.Name(), total, users)
			}
		})
	}
}

// TestOracleBatchAtomicity covers validate-before-mutate for a non-index
// mechanism: a malformed unary report in a batch leaves the state untouched.
func TestOracleBatchAtomicity(t *testing.T) {
	oue, err := ldp.NewOUE(8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(oue, ldp.Histogram(8), 2)
	if err != nil {
		t.Fatal(err)
	}
	good := ldp.Report{Bits: make([]bool, 8)}
	good.Bits[3] = true
	bad := ldp.Report{Bits: make([]bool, 5)}
	if err := col.IngestBatch([]ldp.Report{good, bad}); err == nil {
		t.Fatal("expected error for malformed report in batch")
	}
	if col.Count() != 0 {
		t.Fatalf("failed batch mutated count: %v", col.Count())
	}
	for i, v := range col.State() {
		if v != 0 {
			t.Fatalf("failed batch mutated state[%d] = %v", i, v)
		}
	}
}

func TestProductWorkloadFacade(t *testing.T) {
	p := ldp.Product(ldp.AllRange(4), ldp.AllRange(4))
	if p.Domain() != 16 || p.Queries() != 100 {
		t.Fatalf("2-D range workload shape: n=%d p=%d", p.Domain(), p.Queries())
	}
	mech, err := ldp.Optimize(context.Background(), p, 1.0,
		ldp.WithIterations(60), ldp.WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if err := mech.Strategy().Validate(1e-7); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeForPriorFacade(t *testing.T) {
	n := 8
	w := ldp.Histogram(n)
	prior := make([]float64, n)
	prior[0], prior[1] = 0.7, 0.3
	// The deprecated wrapper must behave exactly like Optimize+WithPrior.
	mech, err := ldp.OptimizeForPrior(w, 1.0, prior, &ldp.OptimizeOptions{Iters: 150, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if mech.Name() != "Optimized (prior)" {
		t.Fatalf("name = %q", mech.Name())
	}
	vp, err := ldp.Evaluate(mech, w)
	if err != nil {
		t.Fatal(err)
	}
	// Concentrated types must enjoy lower variance than the ignored tail.
	if vp.PerUser[0] >= vp.PerUser[n-1] {
		t.Fatalf("prior-favored type variance %v not below tail %v", vp.PerUser[0], vp.PerUser[n-1])
	}
}

func TestOptimizeBestFacade(t *testing.T) {
	w := ldp.Prefix(8)
	mech, err := ldp.Optimize(context.Background(), w, 1.0,
		ldp.WithIterations(80), ldp.WithSeed(25), ldp.WithWarmStarts())
	if err != nil {
		t.Fatal(err)
	}
	optSC, err := ldp.SampleComplexity(mech, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Must beat (or match) every factorization competitor even at this tiny
	// iteration budget — that is WithWarmStarts' contract.
	ms, err := ldp.Competitors(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Name() == "Matrix Mechanism (L1)" || m.Name() == "Matrix Mechanism (L2)" {
			continue // additive mechanisms are not warm-start candidates
		}
		sc, err := ldp.SampleComplexity(m, w, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if optSC > sc*1.05 {
			t.Fatalf("WithWarmStarts (%v) worse than %s (%v)", optSC, m.Name(), sc)
		}
	}
}
