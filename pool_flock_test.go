package ldp_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ldp "repro"
)

// The cross-process singleflight scenario: two REAL OS processes, both cold
// (no in-memory cache to help), race to resolve the same (workload, ε)
// strategy over one shared cache directory. The per-key flock must serialize
// them so Algorithm 1 runs exactly once between them; the loser loads the
// winner's digest-verified entry from disk.

// TestPoolLockChildProcess is not a test in the normal run: it is the child
// body, re-executed from the test binary with LDP_POOLLOCK_CHILD=1. It waits
// for the driver's start-file barrier (so both children race for real), then
// resolves the strategy and reports its pool counters and the resulting
// strategy digest through its result file.
func TestPoolLockChildProcess(t *testing.T) {
	if os.Getenv("LDP_POOLLOCK_CHILD") != "1" {
		t.Skip("subprocess body; driven by TestStrategyCacheCrossProcessSingleflight")
	}
	cacheDir := os.Getenv("LDP_POOLLOCK_CACHE_DIR")
	startFile := os.Getenv("LDP_POOLLOCK_START_FILE")
	resultFile := os.Getenv("LDP_POOLLOCK_RESULT_FILE")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(startFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("start barrier never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	// A wide-enough optimization that the two children genuinely overlap: if
	// the flock were a no-op, both would be mid-Algorithm-1 when the other
	// starts and the driver's exactly-one-run assertion would catch it.
	pool := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(cacheDir))
	s, err := pool.Strategy(context.Background(), ldp.Prefix(64), 1.0,
		ldp.WithIterations(400), ldp.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	out := fmt.Sprintf("runs=%d diskhits=%d digest=%s", st.OptimizerRuns, st.StrategyDiskHits, ldp.StrategyDigest(s))
	tmp := resultFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, resultFile); err != nil {
		t.Fatal(err)
	}
}

// childResult is one child's parsed report.
type childResult struct {
	runs, diskhits int
	digest         string
}

func startPoolLockChild(t *testing.T, cacheDir, startFile, resultFile string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^TestPoolLockChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"LDP_POOLLOCK_CHILD=1",
		"LDP_POOLLOCK_CACHE_DIR="+cacheDir,
		"LDP_POOLLOCK_START_FILE="+startFile,
		"LDP_POOLLOCK_RESULT_FILE="+resultFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func readChildResult(t *testing.T, path string) childResult {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r childResult
	if _, err := fmt.Sscanf(strings.TrimSpace(string(b)), "runs=%d diskhits=%d digest=%s", &r.runs, &r.diskhits, &r.digest); err != nil {
		t.Fatalf("bad child result %q: %v", b, err)
	}
	return r
}

func TestStrategyCacheCrossProcessSingleflight(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	startFile := filepath.Join(dir, "start")
	results := []string{filepath.Join(dir, "r1"), filepath.Join(dir, "r2")}

	cmds := []*exec.Cmd{
		startPoolLockChild(t, cacheDir, startFile, results[0]),
		startPoolLockChild(t, cacheDir, startFile, results[1]),
	}
	// Drop the barrier: both children are live and now race into the same
	// cold resolution.
	if err := os.WriteFile(startFile, []byte("go"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("child %d: %v", i, err)
		}
	}

	a, b := readChildResult(t, results[0]), readChildResult(t, results[1])
	// The whole point: one optimizer run between the two processes; the other
	// found the winner's persisted entry (on the pre-lock check or on the
	// post-lock re-check) instead of re-paying Algorithm 1.
	if a.runs+b.runs != 1 {
		t.Fatalf("want exactly 1 optimizer run across both processes, got %d + %d", a.runs, b.runs)
	}
	if a.diskhits+b.diskhits != 1 {
		t.Fatalf("want exactly 1 disk hit across both processes, got %d + %d", a.diskhits, b.diskhits)
	}
	if a.digest != b.digest {
		t.Fatalf("processes resolved different strategies: %s vs %s", a.digest, b.digest)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.strategy"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one persisted cache entry, got %v (%v)", entries, err)
	}
}
