package ldp_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/transport"
)

// walSegments returns the data directory's WAL segment paths, ascending.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

// requireSnapEqual asserts two snapshots agree bit-for-bit in (state, count,
// mechanism identity) — the crash-consistency contract. Epochs are
// deliberately excluded: recovery re-seeds the epoch past the pre-crash one.
func requireSnapEqual(t *testing.T, label string, got, want ldp.Snapshot) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%s: count %v, want %v", label, got.Count(), want.Count())
	}
	if got.Info() != want.Info() {
		t.Fatalf("%s: identity %+v, want %+v", label, got.Info(), want.Info())
	}
	gs, ws := got.State(), want.State()
	if len(gs) != len(ws) {
		t.Fatalf("%s: state width %d, want %d", label, len(gs), len(ws))
	}
	for i := range ws {
		if math.Float64bits(gs[i]) != math.Float64bits(ws[i]) {
			t.Fatalf("%s: state[%d] = %v, want %v (bit mismatch)", label, i, gs[i], ws[i])
		}
	}
}

// randomBatches randomizes the given per-batch sizes through a mechanism's
// randomizer at a fixed seed.
func randomBatches(t *testing.T, rz ldp.Randomizer, n int, sizes []int, seed int64) [][]ldp.Report {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]ldp.Report, len(sizes))
	for b, sz := range sizes {
		out[b] = make([]ldp.Report, sz)
		for i := range out[b] {
			rep, err := rz.Randomize(rng.Intn(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			out[b][i] = rep
		}
	}
	return out
}

// referenceSnap absorbs batches into a fresh single-goroutine server and
// returns its snapshot — the ground truth a recovery must reproduce.
func referenceSnap(t *testing.T, agg ldp.Aggregator, w ldp.Workload, batches [][]ldp.Report) ldp.Snapshot {
	t.Helper()
	ref, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := ref.IngestBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return ref.Snap()
}

// The headline durability guarantee, per mechanism family: kill the collector
// at an arbitrary point of the final WAL append — simulated by truncating the
// log at EVERY byte offset of the final record — restart, and the recovered
// snapshot is bit-identical in (state, count, mechanism identity) to a
// reference collector that absorbed exactly the acknowledged batches: the
// fully-ingested prefix when the final record is torn, every batch when it
// is complete.
func TestCrashRecoveryBitIdenticalAtEveryTruncation(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	sizes := []int{3, 5, 2, 4}
	for name, m := range e2eMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			batches := randomBatches(t, m.rz, n, sizes, 7)
			dir := t.TempDir()
			col, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir, ldp.CheckpointEvery(0)))
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < len(batches)-1; b++ {
				if err := col.IngestBatchKeyed(batches[b], fmt.Sprintf("key-%d", b)); err != nil {
					t.Fatal(err)
				}
			}
			segs := walSegments(t, dir)
			if len(segs) != 1 {
				t.Fatalf("expected one WAL segment, found %v", segs)
			}
			st, err := os.Stat(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			finalStart := st.Size()
			if err := col.IngestBatchKeyed(batches[len(batches)-1], "key-final"); err != nil {
				t.Fatal(err)
			}
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(data)) <= finalStart {
				t.Fatalf("final record added no bytes (%d → %d)", finalStart, len(data))
			}

			wantPrefix := referenceSnap(t, m.agg, w, batches[:len(batches)-1])
			wantAll := referenceSnap(t, m.agg, w, batches)

			base := filepath.Base(segs[0])
			for off := finalStart; off <= int64(len(data)); off++ {
				crashDir := t.TempDir()
				if err := os.WriteFile(filepath.Join(crashDir, base), data[:off], 0o644); err != nil {
					t.Fatal(err)
				}
				rec, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(crashDir, ldp.CheckpointEvery(0)))
				if err != nil {
					t.Fatalf("truncated at %d: recovery failed: %v", off, err)
				}
				want := wantPrefix
				if off == int64(len(data)) {
					want = wantAll
				}
				requireSnapEqual(t, fmt.Sprintf("truncated at byte %d of [%d,%d]", off, finalStart, len(data)), rec.Snap(), want)
				if err := rec.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// The same guarantee with a checkpoint in the history: recovery must compose
// checkpoint state + WAL tail, and a torn tail after a checkpoint must fall
// back to exactly the checkpointed-plus-acknowledged prefix.
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["strategy"]
	batches := randomBatches(t, m.rz, n, []int{4, 3, 5}, 11)

	dir := t.TempDir()
	col, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir, ldp.CheckpointEvery(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := col.IngestBatch(batches[0]); err != nil {
		t.Fatal(err)
	}
	if err := col.IngestBatch(batches[1]); err != nil {
		t.Fatal(err)
	}
	if err := col.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := col.IngestBatchKeyed(batches[2], "post-ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	segs := walSegments(t, dir)
	active := segs[len(segs)-1]
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := referenceSnap(t, m.agg, w, batches[:2])
	wantAll := referenceSnap(t, m.agg, w, batches)

	for off := int64(0); off <= int64(len(data)); off++ {
		crashDir := t.TempDir()
		// Copy the whole directory (checkpoint + any other segments), then
		// truncate the active segment at off.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if e.Name() == filepath.Base(active) {
				src = src[:off]
			}
			if err := os.WriteFile(filepath.Join(crashDir, e.Name()), src, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(crashDir, ldp.CheckpointEvery(0)))
		if err != nil {
			t.Fatalf("truncated at %d: recovery failed: %v", off, err)
		}
		want := wantPrefix
		if off == int64(len(data)) {
			want = wantAll
		}
		requireSnapEqual(t, fmt.Sprintf("post-checkpoint tail truncated at %d", off), rec.Snap(), want)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// A client retry whose response was lost to a server crash must absorb
// exactly once across the restart: the WAL records the idempotency key with
// the batch, recovery seeds the transport's cache with it, and the retried
// request replays instead of re-absorbing.
func TestDurableRestartReplaysIdempotencyKey(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["OUE"]
	reports := randomBatches(t, m.rz, n, []int{10}, 13)[0]
	dir := t.TempDir()
	info := ldp.ServerInfo{Mechanism: "OUE", Domain: n, Epsilon: 1}
	ctx := context.Background()

	col1, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := ldp.NewCollectorServer(col1, info)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(h1)
	tc1, err := transport.NewClient(hs1.URL, hs1.Client())
	if err != nil {
		t.Fatal(err)
	}
	if acc, err := tc1.PostReportsKeyed(ctx, reports, "retry-me"); err != nil || acc != len(reports) {
		t.Fatalf("first keyed post: accepted %d, err %v", acc, err)
	}
	// Crash: the response to the client is "lost", the server dies.
	hs1.Close()
	if err := col1.Close(); err != nil {
		t.Fatal(err)
	}

	col2, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	if got := col2.Count(); got != float64(len(reports)) {
		t.Fatalf("recovered count %v, want %d", got, len(reports))
	}
	h2, err := ldp.NewCollectorServer(col2, info)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(h2)
	defer hs2.Close()
	tc2, err := transport.NewClient(hs2.URL, hs2.Client())
	if err != nil {
		t.Fatal(err)
	}
	// The client's retry of the same keyed batch must not re-absorb. The
	// seeded outcome is a definitive 409 carrying the recovered count — the
	// log proves that many reports landed under the key but not that they
	// were the whole request, so the client is told to trim exactly that
	// prefix (and re-send any remainder under a fresh key).
	acc, err := tc2.PostReportsKeyed(ctx, reports, "retry-me")
	var se *transport.StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusConflict {
		t.Fatalf("retried keyed post: accepted %d, err %v, want a 409 StatusError", acc, err)
	}
	if acc != len(reports) {
		t.Fatalf("retried keyed post reported %d accepted, want the recovered %d", acc, len(reports))
	}
	if got := col2.Count(); got != float64(len(reports)) {
		t.Fatalf("count after replayed retry %v, want %d (double absorb)", got, len(reports))
	}
	// A genuinely new key still absorbs.
	if acc, err := tc2.PostReportsKeyed(ctx, reports, "fresh-key"); err != nil || acc != len(reports) {
		t.Fatalf("fresh keyed post: accepted %d, err %v", acc, err)
	}
	if got := col2.Count(); got != float64(2*len(reports)) {
		t.Fatalf("count after fresh key %v, want %d", got, 2*len(reports))
	}
	// /healthz reports the recovery.
	h, err := tc2.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Durability == nil || !h.Durability.Recovered || h.Durability.RecoveredReports != int64(len(reports)) {
		t.Fatalf("healthz durability %+v", h.Durability)
	}
}

// A keyed ingest whose WAL records straddle a checkpoint cut must still seed
// its FULL absorbed count after a restart — the checkpoint carries the key
// table forward — so the retrying client trims everything that landed
// instead of double-absorbing the checkpointed prefix.
func TestDurableRestartSeedsKeysAcrossCheckpoint(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["strategy"]
	batches := randomBatches(t, m.rz, n, []int{6, 4}, 23)
	dir := t.TempDir()

	col1, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir, ldp.CheckpointEvery(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := col1.IngestBatchKeyed(batches[0], "straddle"); err != nil {
		t.Fatal(err)
	}
	if err := col1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := col1.IngestBatchKeyed(batches[1], "straddle"); err != nil {
		t.Fatal(err)
	}
	if err := col1.Close(); err != nil {
		t.Fatal(err)
	}

	col2, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	h2, err := ldp.NewCollectorServer(col2, ldp.ServerInfo{Domain: n})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(h2)
	defer hs.Close()
	tc, err := transport.NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]ldp.Report(nil), batches[0]...), batches[1]...)
	acc, err := tc.PostReportsKeyed(context.Background(), all, "straddle")
	var se *transport.StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusConflict {
		t.Fatalf("straddling retry: accepted %d, err %v, want 409", acc, err)
	}
	if acc != len(all) {
		t.Fatalf("straddling retry reported %d accepted, want the full %d (checkpointed %d + replayed %d)", acc, len(all), len(batches[0]), len(batches[1]))
	}
	if got := col2.Count(); got != float64(len(all)) {
		t.Fatalf("count after straddling retry %v, want %d", got, len(all))
	}
}

// The snapshot epoch must not move backwards across a durable restart — that
// regression is the lossy-restart symptom EpochRegressionError exists for,
// so a clean recovery must never trigger it.
func TestDurableRecoveryEpochMonotonic(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["OLH"]
	batches := randomBatches(t, m.rz, n, []int{5, 5, 5}, 17)
	dir := t.TempDir()

	col1, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	var last ldp.Snapshot
	for _, b := range batches {
		if err := col1.IngestBatch(b); err != nil {
			t.Fatal(err)
		}
		last = col1.Snap() // observe a state per batch: the epoch advances each time
	}
	if err := col1.Close(); err != nil {
		t.Fatal(err)
	}

	col2, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	recovered := col2.Snap()
	if recovered.Epoch() <= last.Epoch() {
		t.Fatalf("recovered epoch %d does not exceed pre-crash epoch %d", recovered.Epoch(), last.Epoch())
	}
	requireSnapEqual(t, "recovered snapshot", recovered, last)
}

// Reports logged under one mechanism must never replay into another: every
// WAL record carries a mechanism fingerprint (the strategy digest, or the
// (name, domain, ε) triple for oracles, which that triple fully determines),
// and the checkpoint carries the full identity. The dangerous pairs are the
// ones whose reports are mutually *absorbable* — OUE and RAPPOR share the
// unary report shape, and one oracle at two ε values shares everything but
// the constants — so only the fingerprint stands between them and a silently
// wrong estimate.
func TestDurableRecoveryRejectsMechanismMismatch(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	ms := e2eMechanisms(t, n)
	seed := func(t *testing.T, m e2eMechanism, checkpoint bool) string {
		t.Helper()
		dir := t.TempDir()
		col, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := col.IngestBatch(randomBatches(t, m.rz, n, []int{4}, 19)[0]); err != nil {
			t.Fatal(err)
		}
		if checkpoint {
			if err := col.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := col.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	otherEps, err := ldp.OracleByName("OUE", n, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		written    e2eMechanism
		reopenAs   ldp.Aggregator
		checkpoint bool
	}{
		// Checkpointless WAL under OUE reopened as RAPPOR: same report
		// shape, only the record fingerprint refuses.
		"wal-only OUE into RAPPOR": {ms["OUE"], ms["RAPPOR"].agg, false},
		// Same oracle, different ε — name and domain agree, ε must not.
		"wal-only OUE ε=1 into ε=2": {ms["OUE"], otherEps, false},
		// With a checkpoint, the full identity check refuses too.
		"checkpointed OUE into OLH": {ms["OUE"], ms["OLH"].agg, true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dir := seed(t, tc.written, tc.checkpoint)
			if _, err := ldp.NewCollector(tc.reopenAs, w, 0, ldp.WithDurability(dir)); err == nil {
				t.Fatalf("%s: foreign history recovered without error", name)
			}
		})
	}
}

// TestDurableCollectorConcurrentIngest is the race-enabled crash-recovery
// ingest test: 8 goroutines ingest keyed batches through one durable
// collector with a checkpoint interval small enough that rotations and
// checkpoint cuts interleave with ingest, while a reader polls snapshots.
// The directory must then recover bit-identical to a serial reference.
func TestDurableCollectorConcurrentIngest(t *testing.T) {
	const n, writers, perWriter, batchSize = 32, 8, 10, 25
	w := ldp.Histogram(n)
	m := e2eMechanisms(t, n)["strategy"]
	all := make([][][]ldp.Report, writers)
	for g := range all {
		sizes := make([]int, perWriter)
		for i := range sizes {
			sizes[i] = batchSize
		}
		all[g] = randomBatches(t, m.rz, n, sizes, int64(100+g))
	}
	dir := t.TempDir()
	col, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir, ldp.CheckpointEvery(200)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := col.Handle()
			for i, b := range all[g] {
				if err := col.IngestBatchKeyed(b, fmt.Sprintf("w%d-%d", g, i)); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if err := h.Ingest(b[0]); err != nil { // pinned-handle path too
						errs <- err
						return
					}
				}
				_ = col.Snap() // reads race checkpoint cuts and ingest
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	before := col.Snap()
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := ldp.NewCollector(m.agg, w, 0, ldp.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	requireSnapEqual(t, "concurrent durable ingest", rec.Snap(), before)
	if st, ok := rec.Durability(); !ok || !st.Recovered {
		t.Fatalf("durability status %+v, ok=%v", st, ok)
	}
}
