package ldp_test

import (
	"context"
	"strings"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// ingestSome feeds count reports of a trivial shape into a collector.
func ingestSome(t *testing.T, c *ldp.Collector, n, count, seedOff int) {
	t.Helper()
	for i := 0; i < count; i++ {
		if err := c.Ingest(ldp.Report{Index: (i + seedOff) % n}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotMergeSumsStateAndCount(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	ingestSome(t, a, n, 10, 0)
	ingestSome(t, b, n, 7, 3)

	merged, err := a.Snap().Merge(b.Snap())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count() != 17 {
		t.Fatalf("merged count %v, want 17", merged.Count())
	}
	sa, sb, sm := a.Snap().State(), b.Snap().State(), merged.State()
	for i := range sm {
		if sm[i] != sa[i]+sb[i] {
			t.Fatalf("state[%d]: %v != %v + %v", i, sm[i], sa[i], sb[i])
		}
	}
	if merged.Info().Digest != ldp.StrategyDigest(s) {
		t.Fatalf("merged snapshot lost the mechanism digest: %+v", merged.Info())
	}

	// MergeSnapshots folds any number; order does not matter for the state.
	folded, err := ldp.MergeSnapshots(b.Snap(), a.Snap())
	if err != nil {
		t.Fatal(err)
	}
	fs := folded.State()
	for i := range sm {
		if fs[i] != sm[i] {
			t.Fatalf("fold order changed state[%d]", i)
		}
	}
	if _, err := ldp.MergeSnapshots(); err == nil {
		t.Fatal("empty merge accepted")
	}
}

// The acceptance-critical rejection: two strategy matrices sharing name,
// domain, and ε are still different mechanisms — only the digest tells them
// apart, and Merge must refuse to sum their accumulators.
func TestSnapshotMergeRejectsDigestMismatch(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	s1 := benchfix.RRStrategy(n, 1.0)
	s2 := benchfix.RRStrategy(n, 1.0)
	d := 0.1 / float64(n)
	s2.Q.Set(0, 0, s2.Q.At(0, 0)-d)
	s2.Q.Set(1, 0, s2.Q.At(1, 0)+d)
	agg1, err := ldp.NewAggregator(s1)
	if err != nil {
		t.Fatal(err)
	}
	agg2, err := ldp.NewAggregator(s2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ldp.NewCollector(agg1, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ldp.NewCollector(agg2, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Snap().Merge(c2.Snap()); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest mismatch not rejected: %v", err)
	}
}

func TestSnapshotMergeRejectsMechanismMismatch(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	oue, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rap, err := ldp.NewRAPPOROracle(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ldp.NewCollector(oue, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ldp.NewCollector(rap, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same domain, same ε, same accumulator width — only the family differs.
	if _, err := c1.Snap().Merge(c2.Snap()); err == nil || !strings.Contains(err.Error(), "mechanism") {
		t.Fatalf("cross-family merge not rejected: %v", err)
	}

	// Same family at different ε: different flip probabilities, different
	// channel.
	oue2, err := ldp.NewOUE(n, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := ldp.NewCollector(oue2, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Snap().Merge(c3.Snap()); err == nil {
		t.Fatal("cross-ε merge not rejected")
	}

	// Different domain ⇒ different width.
	oueWide, err := ldp.NewOUE(2*n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := ldp.NewCollector(oueWide, ldp.Histogram(2*n), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Snap().Merge(c4.Snap()); err == nil {
		t.Fatal("cross-domain merge not rejected")
	}
}

// Snapshot epochs are a monotonic sequence of distinct observed states: an
// idle re-snap keeps the epoch, an ingest advances it, and a merged snapshot
// carries the largest constituent epoch.
func TestSnapshotEpochAdvancesWithState(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	oue, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(oue, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := col.Snap()
	if again := col.Snap(); again.Epoch() != first.Epoch() {
		t.Fatalf("idle re-snap moved the epoch: %d -> %d", first.Epoch(), again.Epoch())
	}
	bits := make([]bool, n)
	if err := col.Ingest(ldp.Report{Bits: bits}); err != nil {
		t.Fatal(err)
	}
	after := col.Snap()
	if after.Epoch() <= first.Epoch() {
		t.Fatalf("epoch did not advance across an ingest: %d -> %d", first.Epoch(), after.Epoch())
	}

	// Server-side sequence behaves the same way.
	sv, err := ldp.NewServer(oue, w)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sv.Snap()
	if s2 := sv.Snap(); s2.Epoch() != s1.Epoch() {
		t.Fatal("idle server re-snap moved the epoch")
	}
	if err := sv.Ingest(ldp.Report{Bits: bits}); err != nil {
		t.Fatal(err)
	}
	s3 := sv.Snap()
	if s3.Epoch() <= s1.Epoch() {
		t.Fatal("server epoch did not advance across an ingest")
	}

	// A merge keeps the largest epoch it saw.
	other, err := ldp.NewCollector(oue, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := after.Merge(other.Snap())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Epoch() != after.Epoch() {
		t.Fatalf("merged epoch %d, want max constituent %d", merged.Epoch(), after.Epoch())
	}
}

// /healthz (the merge-free countEpoch path) and /snapshot (the full merge)
// must number the same states identically: a healthz poll that observes a
// new count claims the epoch, and the following snapshot of the unchanged
// state reports that same epoch, not a fresh one.
func TestHealthzAndSnapshotAgreeOnEpoch(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	info := ldp.MechanismInfoOf(agg)
	hs := startCollectorServer(t, agg, w, info)
	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		if err := rcol.IngestBatch(ctx, []ldp.Report{{Index: round % n}}); err != nil {
			t.Fatal(err)
		}
		if err := rcol.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		h, err := rcol.Healthz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Count != float64(round+1) {
			t.Fatalf("round %d: healthz count %v", round, h.Count)
		}
		snap, err := rcol.Snap(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch() != h.Epoch {
			t.Fatalf("round %d: snapshot epoch %d, healthz epoch %d — the two views diverged", round, snap.Epoch(), h.Epoch)
		}
		h2, err := rcol.Healthz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h2.Epoch != h.Epoch || h2.Count != h.Count {
			t.Fatalf("round %d: idle healthz re-poll moved the view: %+v -> %+v", round, h, h2)
		}
	}
}

// Snapshots are immutable values: mutating what State() returned must not
// leak back into the snapshot, and NewSnapshot must copy its input.
func TestSnapshotImmutability(t *testing.T) {
	state := []float64{1, 2, 3}
	snap := ldp.NewSnapshot(state, 3, 1, ldp.MechanismInfo{Domain: 3})
	state[0] = 99
	if got := snap.State(); got[0] != 1 {
		t.Fatalf("NewSnapshot aliased its input: %v", got)
	}
	out := snap.State()
	out[1] = -5
	if got := snap.State(); got[1] != 2 {
		t.Fatalf("State() handed out the internal slice: %v", got)
	}
}
