package ldp_test

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// reportSource is anything that can privatize a user type — a frequency
// oracle (its own randomizer) or a strategy Randomizer.
type reportSource interface {
	Randomize(u int, rng *rand.Rand) (ldp.Report, error)
}

// randomizerFor returns the report source matching agg: the oracle itself,
// or a Randomizer built from the aggregator's strategy.
func randomizerFor(t *testing.T, agg ldp.Aggregator) reportSource {
	t.Helper()
	if rs, ok := agg.(reportSource); ok {
		return rs
	}
	sa, ok := agg.(interface{ Strategy() *ldp.Strategy })
	if !ok {
		t.Fatal("aggregator exposes neither Randomize nor Strategy")
	}
	rz, err := ldp.NewRandomizer(sa.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	return rz
}

// ingestSkewed fills a collector with a fixed-seed skewed population and
// returns the snapshot.
func ingestSkewed(t *testing.T, agg ldp.Aggregator, w ldp.Workload, users int, seed int64) ldp.Snapshot {
	t.Helper()
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	rz := randomizerFor(t, agg)
	rng := rand.New(rand.NewSource(seed))
	n := agg.Domain()
	for i := 0; i < users; i++ {
		u := rng.Intn(n / 4)
		if rng.Float64() < 0.25 {
			u = rng.Intn(n)
		}
		rep, err := rz.Randomize(u, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	return col.Snap()
}

// Cold vs. warm vs. restart: the first Strategy resolution runs the
// optimizer, the second is a memory hit, and a fresh pool over the same cache
// directory — the restart — loads the persisted entry instead of re-running
// Algorithm 1, bit-identically.
func TestPoolStrategyColdWarmRestart(t *testing.T) {
	const n, eps = 8, 1.0
	dir := t.TempDir()
	w := ldp.Prefix(n)
	opts := []ldp.OptimizeOption{ldp.WithIterations(60), ldp.WithSeed(7)}
	ctx := context.Background()

	pool := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir))
	s1, err := pool.Strategy(ctx, w, eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.OptimizerRuns != 1 || st.StrategyMemHits != 0 || st.StrategyDiskHits != 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	s2, err := pool.Strategy(ctx, w, eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatal("warm resolution returned a different strategy instance")
	}
	if st := pool.Stats(); st.OptimizerRuns != 1 || st.StrategyMemHits != 1 {
		t.Fatalf("warm stats: %+v", st)
	}

	// "Restart": a brand-new pool sharing only the cache directory.
	pool2 := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir))
	s3, err := pool2.Strategy(ctx, w, eps, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool2.Stats(); st.OptimizerRuns != 0 || st.StrategyDiskHits != 1 {
		t.Fatalf("restart must skip the optimizer via the persisted cache, stats: %+v", st)
	}
	if ldp.StrategyDigest(s3) != ldp.StrategyDigest(s1) {
		t.Fatal("persisted strategy is not bit-identical to the optimized one")
	}
	got := s3.Q.Data()
	want := s1.Q.Data()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("strategy entry %d differs after reload: %v vs %v", i, got[i], want[i])
		}
	}

	// A different ε is a different key: the optimizer runs again.
	if _, err := pool2.Strategy(ctx, w, 2.0, opts...); err != nil {
		t.Fatal(err)
	}
	if st := pool2.Stats(); st.OptimizerRuns != 1 {
		t.Fatalf("distinct ε should re-optimize, stats: %+v", st)
	}
}

// A corrupted cache entry must be ignored (digest-verified load), costing a
// re-optimization rather than serving a wrong strategy.
func TestPoolCacheRejectsCorruptEntry(t *testing.T) {
	const n, eps = 8, 1.0
	dir := t.TempDir()
	w := ldp.Histogram(n)
	opts := []ldp.OptimizeOption{ldp.WithIterations(40), ldp.WithSeed(3)}
	ctx := context.Background()

	pool := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir))
	if _, err := pool.Strategy(ctx, w, eps, opts...); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.strategy"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (%v)", entries, err)
	}
	// Flip one byte mid-file: the wire decode or the digest check must refuse.
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	pool2 := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir))
	if _, err := pool2.Strategy(ctx, w, eps, opts...); err != nil {
		t.Fatal(err)
	}
	if st := pool2.Stats(); st.OptimizerRuns != 1 || st.StrategyDiskHits != 0 {
		t.Fatalf("corrupt entry must be a miss, stats: %+v", st)
	}
}

// Satellite: N goroutines resolving overlapping (identity, workload) keys
// must trigger exactly one estimator build per distinct key, and pooled
// answers must be byte-identical to fresh estimators. Run under -race in CI.
func TestPoolEstimatorSingleflightRace(t *testing.T) {
	const n, users, goroutines, rounds = 32, 400, 16, 4
	agg, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []ldp.Workload{
		ldp.Histogram(n), ldp.Prefix(n), ldp.AllRange(n), ldp.WidthRange(n, 4),
	}
	snap := ingestSkewed(t, agg, workloads[0], users, 11)

	pool := ldp.NewEstimatorPool()
	var wg sync.WaitGroup
	answers := make([][][]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Overlapping keys: every goroutine walks all workloads, offset
				// by its index so resolutions collide mid-flight.
				for k := range workloads {
					w := workloads[(g+k)%len(workloads)]
					est, err := pool.Estimator(agg, w)
					if err != nil {
						errs[g] = err
						return
					}
					a, err := est.Answers(snap)
					if err != nil {
						errs[g] = err
						return
					}
					if r == 0 && (g+k)%len(workloads) == 0 {
						answers[g] = append(answers[g], a)
					}
					if _, err := est.Variance(snap); err != nil {
						errs[g] = err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	st := pool.Stats()
	if st.EstimatorBuilds != uint64(len(workloads)) {
		t.Fatalf("want exactly %d estimator builds (one per distinct key), got %d", len(workloads), st.EstimatorBuilds)
	}
	if st.EstimatorHits == 0 {
		t.Fatal("expected cache hits under contention")
	}

	// Byte-identical to a fresh, unpooled estimator.
	for _, w := range workloads {
		est, err := ldp.NewEstimator(agg, w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := est.Answers(snap)
		if err != nil {
			t.Fatal(err)
		}
		pest, err := pool.Estimator(agg, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pest.Answers(snap)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s answer %d: pooled %v, fresh %v", w.Name(), i, got[i], want[i])
			}
		}
	}
}

// AnswerBatch must return, per workload, exactly what that workload's own
// estimator returns — byte-identical answers and variances — while sharing
// x̂ and repeated W·B rows across the batch, and deduplicating workloads with
// equal digests.
func TestAnswerBatchMatchesIndividualReads(t *testing.T) {
	const n, users = 32, 600
	for _, mech := range []string{"oracle", "strategy"} {
		t.Run(mech, func(t *testing.T) {
			var agg ldp.Aggregator
			var err error
			if mech == "oracle" {
				agg, err = ldp.NewOUE(n, 1.0)
			} else {
				agg, err = ldp.NewAggregator(benchfix.RRStrategy(n, 1.0))
			}
			if err != nil {
				t.Fatal(err)
			}
			workloads := []ldp.Workload{
				ldp.Histogram(n), ldp.Prefix(n), ldp.AllRange(n), ldp.Histogram(n),
			}
			snap := ingestSkewed(t, agg, workloads[0], users, 23)

			pool := ldp.NewEstimatorPool()
			batch, err := pool.AnswerBatch(agg, snap, workloads, ldp.WithBatchVariance())
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(workloads) {
				t.Fatalf("got %d results for %d workloads", len(batch), len(workloads))
			}
			for i, w := range workloads {
				est, err := ldp.NewEstimator(agg, w)
				if err != nil {
					t.Fatal(err)
				}
				wantA, err := est.Answers(snap)
				if err != nil {
					t.Fatal(err)
				}
				wantV, err := est.Variance(snap)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch[i].Answers) != len(wantA) || len(batch[i].Variance) != len(wantV) {
					t.Fatalf("workload %d: result shape mismatch", i)
				}
				for j := range wantA {
					if math.Float64bits(batch[i].Answers[j]) != math.Float64bits(wantA[j]) {
						t.Fatalf("workload %d answer %d: batch %v, individual %v", i, j, batch[i].Answers[j], wantA[j])
					}
					if math.Float64bits(batch[i].Variance[j]) != math.Float64bits(wantV[j]) {
						t.Fatalf("workload %d variance %d: batch %v, individual %v", i, j, batch[i].Variance[j], wantV[j])
					}
				}
			}
			st := pool.Stats()
			// AllRange contains every Histogram and Prefix row, so sharing must
			// have fired; the duplicate Histogram dedups by digest before rows.
			if st.SharedRowHits == 0 {
				t.Fatalf("expected shared W·B row hits across the batch, stats: %+v", st)
			}
			if st.EstimatorBuilds != 3 {
				t.Fatalf("duplicate workload should not build twice, stats: %+v", st)
			}
		})
	}
}
