package ldp_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	ldp "repro"
)

// The persisted strategy-cache entry format is pinned two ways: the payload is
// the SaveStrategy wire format (its own golden lives in strategy_v1.golden),
// and the entry name is
//
//	<workloadDigest>-e<epsBitsHex>-<strategyDigest>.strategy
//
// spelled out literally here. An entry written by a past version of the pool —
// the golden bytes planted under the pinned name — must keep loading as a disk
// hit, never a re-optimization, and a rename of the layout must break this
// test rather than silently orphan every deployed cache directory.
func TestPoolCacheEntryGolden(t *testing.T) {
	s := goldenStrategy() // deterministic 3×3 RR at ε=1
	var buf bytes.Buffer
	if err := ldp.SaveStrategy(&buf, s); err != nil {
		t.Fatal(err)
	}
	golden := goldenFile(t, "poolcache_v1.golden", buf.Bytes())

	w := ldp.Histogram(3)
	name := fmt.Sprintf("%s-e%016x-%s.strategy",
		ldp.WorkloadDigest(w), math.Float64bits(s.Eps), ldp.StrategyDigest(s))
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), golden, 0o644); err != nil {
		t.Fatal(err)
	}

	pool := ldp.NewEstimatorPool(ldp.WithPoolCacheDir(dir))
	loaded, err := pool.Strategy(context.Background(), w, s.Eps)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.OptimizerRuns != 0 || st.StrategyDiskHits != 1 {
		t.Fatalf("pinned cache entry was not served from disk, stats: %+v", st)
	}
	got, want := loaded.Q.Data(), s.Q.Data()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("entry %d: loaded %v, golden strategy has %v", i, got[i], want[i])
		}
	}
}
