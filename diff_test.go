package ldp_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// diffAggregators builds one aggregator per mechanism family — the round-trip
// property must hold for every accumulator shape, not just the one a single
// mechanism happens to produce.
func diffAggregators(t *testing.T, n int) map[string]ldp.Aggregator {
	t.Helper()
	strat, err := ldp.NewAggregator(benchfix.RRStrategy(n, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	oue, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rap, err := ldp.NewRAPPOROracle(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ldp.Aggregator{"strategy": strat, "OUE": oue, "RAPPOR": rap}
}

// The round-trip property behind every windowed read: for snapshots a ⊇ b of
// one collector, a.Diff(b).Merge(b) is BIT-identical to a — state bits, count,
// epoch, and identity. Accumulators are integer-valued sums, so the
// subtraction is exact for every mechanism.
func TestSnapshotDiffMergeRoundTrip(t *testing.T) {
	const n, users = 16, 400
	w := ldp.Histogram(n)
	for name, agg := range diffAggregators(t, n) {
		t.Run(name, func(t *testing.T) {
			col, err := ldp.NewCollector(agg, w, 0)
			if err != nil {
				t.Fatal(err)
			}
			rz := randomizerFor(t, agg)
			rng := rand.New(rand.NewSource(42))
			ingest := func(count int) {
				t.Helper()
				for i := 0; i < count; i++ {
					rep, err := rz.Randomize(rng.Intn(n), rng)
					if err != nil {
						t.Fatal(err)
					}
					if err := col.Ingest(rep); err != nil {
						t.Fatal(err)
					}
				}
			}
			ingest(users)
			older := col.Snap()
			ingest(users / 3)
			newer := col.Snap()

			d, err := newer.Diff(older)
			if err != nil {
				t.Fatal(err)
			}
			if d.Count() != newer.Count()-older.Count() {
				t.Fatalf("window count %v, want %v", d.Count(), newer.Count()-older.Count())
			}
			if d.Epoch() != newer.Epoch() {
				t.Fatalf("diff epoch %d, want the newer endpoint's %d", d.Epoch(), newer.Epoch())
			}
			back, err := d.Merge(older)
			if err != nil {
				t.Fatal(err)
			}
			if back.Count() != newer.Count() || back.Epoch() != newer.Epoch() || back.Info() != newer.Info() {
				t.Fatalf("round trip changed the envelope: %+v vs %+v", back, newer)
			}
			bs, ns := back.State(), newer.State()
			for i := range ns {
				if math.Float64bits(bs[i]) != math.Float64bits(ns[i]) {
					t.Fatalf("state[%d] not bit-identical after Diff+Merge: %x vs %x",
						i, math.Float64bits(bs[i]), math.Float64bits(ns[i]))
				}
			}
			// The empty window is exact too: a self-diff is all zeros.
			z, err := newer.Diff(newer)
			if err != nil {
				t.Fatal(err)
			}
			if z.Count() != 0 {
				t.Fatalf("self-diff count %v", z.Count())
			}
			for i, v := range z.State() {
				if v != 0 {
					t.Fatalf("self-diff state[%d] = %v", i, v)
				}
			}
		})
	}
}

func TestSnapshotDiffRefusals(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	aggs := diffAggregators(t, n)
	col, err := ldp.NewCollector(aggs["OUE"], w, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rz := randomizerFor(t, aggs["OUE"])
	ingest := func(c *ldp.Collector, src reportSource, count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			rep, err := src.Randomize(i%n, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Ingest(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(col, rz, 5)
	older := col.Snap()
	ingest(col, rz, 5)
	newer := col.Snap()

	// Epoch inversion: subtracting the newer endpoint from the older would
	// fabricate negative report counts.
	if _, err := older.Diff(newer); err == nil || !strings.Contains(err.Error(), "epoch inversion") {
		t.Fatalf("epoch inversion accepted: %v", err)
	}
	// Mechanism identity conflict: two different mechanisms never share a
	// timeline.
	other, err := ldp.NewCollector(aggs["RAPPOR"], w, 0)
	if err != nil {
		t.Fatal(err)
	}
	ingest(other, randomizerFor(t, aggs["RAPPOR"]), 3)
	if _, err := newer.Diff(other.Snap()); err == nil {
		t.Fatal("cross-mechanism diff accepted")
	}
}
