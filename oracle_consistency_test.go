package ldp_test

import (
	"math/rand"
	"testing"

	ldp "repro"
)

// tse is the total squared error against the truth.
func tse(got, truth []float64) float64 {
	var s float64
	for i := range got {
		d := got[i] - truth[i]
		s += d * d
	}
	return s
}

// WNNLS post-processing through oracle-backed collectors: on a fixed-seed
// skewed dataset in the high-privacy regime (ε = 0.5, where the paper says
// consistency helps most) the consistent answers must be (1) non-negative,
// (2) sum-consistent with the known respondent count, and (3) no worse than
// the raw unbiased answers in total squared error. The ε and seed are pinned
// — at ε=1 the noise is small enough that the projection's bias occasionally
// outweighs its variance cut (seen for RAPPOR), which is expected behavior,
// not a regression.
func TestOracleConsistentAnswersProperties(t *testing.T) {
	const n, users, seed = 16, 2500, 29
	const eps = 0.5
	w := ldp.Histogram(n)
	// Skewed truth: most mass on a few types, several empty types — the
	// regime where raw unbiased estimates go negative and WNNLS has room to
	// repair them.
	x := make([]float64, n)
	{
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < users; i++ {
			u := rng.Intn(4)
			if rng.Float64() < 0.2 {
				u = 4 + rng.Intn(4)
			}
			x[u]++
		}
	}
	truth := w.MatVec(x)
	for _, name := range []string{"OUE", "OLH", "RAPPOR"} {
		t.Run(name, func(t *testing.T) {
			o, err := ldp.OracleByName(name, n, eps)
			if err != nil {
				t.Fatal(err)
			}
			col, err := ldp.NewCollector(o, w, 0)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 1))
			for u, cnt := range x {
				for j := 0; j < int(cnt); j++ {
					rep, err := o.Randomize(u, rng)
					if err != nil {
						t.Fatal(err)
					}
					if err := col.Ingest(rep); err != nil {
						t.Fatal(err)
					}
				}
			}
			est, err := ldp.NewEstimator(o, w)
			if err != nil {
				t.Fatal(err)
			}
			snap := col.Snap()
			raw, err := est.Answers(snap)
			if err != nil {
				t.Fatal(err)
			}
			cons, err := est.ConsistentAnswers(snap)
			if err != nil {
				t.Fatal(err)
			}

			// Sanity that the test is in the interesting regime: the raw
			// estimate of some empty type should have gone negative.
			negative := false
			for _, v := range raw {
				if v < 0 {
					negative = true
				}
			}
			if !negative {
				t.Log("raw answers all non-negative at this seed; properties still checked")
			}

			var sum float64
			for i, v := range cons {
				if v < -1e-9 {
					t.Fatalf("consistent answer %d is negative: %v", i, v)
				}
				sum += v
			}
			if diff := sum - snap.Count(); diff > 1e-6*snap.Count() || diff < -1e-6*snap.Count() {
				t.Fatalf("consistent answers sum to %v, want the known count %v", sum, snap.Count())
			}
			if got, limit := tse(cons, truth), tse(raw, truth); got > limit {
				t.Fatalf("post-processing increased TSE: consistent %v > raw %v", got, limit)
			}
		})
	}
}
