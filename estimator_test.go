package ldp_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/strategy"
)

// An estimator must reject a snapshot from a different mechanism — wrong
// family, wrong matrix (digest), or wrong width — instead of silently
// mis-reconstructing it.
func TestEstimatorRejectsForeignSnapshot(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	s1 := benchfix.RRStrategy(n, 1.0)
	s2 := benchfix.RRStrategy(n, 1.0)
	d := 0.1 / float64(n)
	s2.Q.Set(0, 0, s2.Q.At(0, 0)-d)
	s2.Q.Set(1, 0, s2.Q.At(1, 0)+d)
	agg1, err := ldp.NewAggregator(s1)
	if err != nil {
		t.Fatal(err)
	}
	agg2, err := ldp.NewAggregator(s2)
	if err != nil {
		t.Fatal(err)
	}
	oue, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	col1, err := ldp.NewCollector(agg1, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap1 := col1.Snap()

	// Same mechanism: accepted.
	est1, err := ldp.NewEstimator(agg1, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := est1.Check(snap1); err != nil {
		t.Fatalf("own snapshot rejected: %v", err)
	}
	if _, err := est1.Answers(snap1); err != nil {
		t.Fatal(err)
	}

	// Same shape and ε, different matrix: the digest is the only separator.
	est2, err := ldp.NewEstimator(agg2, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est2.Answers(snap1); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest mismatch not rejected: %v", err)
	}

	// Different family over the same domain and width.
	estOUE, err := ldp.NewEstimator(oue, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := estOUE.DataEstimate(snap1); err == nil {
		t.Fatal("cross-family snapshot accepted")
	}

	// Different width.
	oueWide, err := ldp.NewOUE(2*n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	colWide, err := ldp.NewCollector(oueWide, ldp.Histogram(2*n), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := estOUE.Answers(colWide.Snap()); err == nil {
		t.Fatal("wrong-width snapshot accepted")
	}
}

// The strategy path of Estimator.Variance implements Theorem 3.4 row-wise:
// feeding the expected response histogram of a single-type population
// (acc = N·Q·e_u) must reproduce N times the per-user variance of
// VariancesExplicit, summed over queries — a deterministic cross-check of
// the closed form against the reference implementation.
func TestStrategyVarianceMatchesTheorem(t *testing.T) {
	const n, N = 8, 1000.0
	w := ldp.Prefix(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ldp.NewEstimator(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.OptimalV(w.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	vp := strategy.VariancesExplicit(v, s.Q, s.Eps)
	for u := 0; u < n; u++ {
		state := make([]float64, s.Outputs())
		for o := range state {
			state[o] = N * s.Q.At(o, u)
		}
		snap := ldp.NewSnapshot(state, N, 1, ldp.MechanismInfoOf(agg))
		vars, err := est.Variance(snap)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, x := range vars {
			total += x
		}
		want := N * vp.PerUser[u]
		if math.Abs(total-want) > 1e-6*(1+want) {
			t.Fatalf("type %d: Σ per-query variance %v, Theorem 3.4 gives %v", u, total, want)
		}
	}
}

// The oracle path is the Wang et al. closed form: on the Histogram workload
// each query's variance is exactly count × VariancePerUser.
func TestOracleVarianceClosedForm(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	for _, name := range []string{"OUE", "OLH", "RAPPOR"} {
		o, err := ldp.OracleByName(name, n, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ldp.NewEstimator(o, w)
		if err != nil {
			t.Fatal(err)
		}
		col, err := ldp.NewCollector(o, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			rep, err := o.Randomize(i%n, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := col.Ingest(rep); err != nil {
				t.Fatal(err)
			}
		}
		snap := col.Snap()
		vars, err := est.Variance(snap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := snap.Count() * o.VariancePerUser()
		for i, v := range vars {
			if v != want {
				t.Fatalf("%s: variance[%d] = %v, want count·vpu = %v", name, i, v, want)
			}
		}
	}
}

// Empirical calibration: 95% confidence intervals from the closed-form
// variance must cover the truth at roughly their nominal rate, for both
// mechanism families. Fixed seed, generous band — the point is that the
// intervals are neither nonsense-narrow nor unboundedly wide.
func TestConfidenceIntervalCoverage(t *testing.T) {
	const n, users, trials, level = 8, 400, 120, 0.95
	x := make([]float64, n)
	{
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < users; i++ {
			x[rng.Intn(n)]++
		}
	}
	for name, mech := range e2eMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			w := ldp.Prefix(n)
			truth := w.MatVec(x)
			est, err := ldp.NewEstimator(mech.agg, w)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			q := n / 2 // one mid prefix query
			covered := 0
			for trial := 0; trial < trials; trial++ {
				sv, err := ldp.NewServer(mech.agg, w)
				if err != nil {
					t.Fatal(err)
				}
				for u, cnt := range x {
					for j := 0; j < int(cnt); j++ {
						rep, err := mech.rz.Randomize(u, rng)
						if err != nil {
							t.Fatal(err)
						}
						if err := sv.Ingest(rep); err != nil {
							t.Fatal(err)
						}
					}
				}
				cis, err := est.ConfidenceIntervals(sv.Snap(), level)
				if err != nil {
					t.Fatal(err)
				}
				if cis[q].Low <= truth[q] && truth[q] <= cis[q].High {
					covered++
				}
			}
			rate := float64(covered) / trials
			if rate < 0.85 || rate > 1.0 {
				t.Fatalf("95%% interval covered the truth in %.0f%% of %d trials", 100*rate, trials)
			}
		})
	}
}

func TestConfidenceIntervalShape(t *testing.T) {
	const n = 8
	w := ldp.Histogram(n)
	oue, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ldp.NewEstimator(oue, w)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(oue, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		rep, err := oue.Randomize(i%n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Snap()
	answers, err := est.Answers(snap)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := est.ConfidenceIntervals(snap, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := est.ConfidenceIntervals(snap, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range answers {
		if math.Abs((narrow[i].Low+narrow[i].High)/2-answers[i]) > 1e-9 {
			t.Fatalf("interval %d not centered on the unbiased answer", i)
		}
		if wide[i].High-wide[i].Low <= narrow[i].High-narrow[i].Low {
			t.Fatalf("99%% interval no wider than 90%% at query %d", i)
		}
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := est.ConfidenceIntervals(snap, bad); err == nil {
			t.Fatalf("confidence level %v accepted", bad)
		}
	}
	// An empty snapshot has zero variance and degenerate intervals, not NaNs.
	empty, err := ldp.NewCollector(oue, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	cis, err := est.ConfidenceIntervals(empty.Snap(), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i, ci := range cis {
		if ci.Low != 0 || ci.High != 0 {
			t.Fatalf("empty-snapshot interval %d: %+v", i, ci)
		}
	}
}
