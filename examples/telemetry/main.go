// Telemetry: a software vendor collects feature-flag usage from clients under
// local differential privacy. Each user's state is d binary flags (a point in
// {0,1}^d) and the analyst wants every pairwise co-occurrence table — the
// 2-way marginals workload. This is the marginal-release setting of Cormode
// et al. [12] that the paper's Fourier baseline targets; here the optimized
// mechanism adapts to the same workload automatically and does better.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"

	ldp "repro"
)

const (
	d   = 5 // feature flags per client
	n   = 1 << d
	eps = 1.0
)

func main() {
	w := ldp.KWayMarginals(d, 2)
	fmt.Printf("workload: all 2-way marginals over %d flags → %d queries on a domain of %d\n",
		d, w.Queries(), n)

	// Optimize, and compare against the mechanism purpose-built for
	// marginals (Fourier) and against randomized response.
	mech, err := ldp.Optimize(context.Background(), w, eps,
		ldp.WithIterations(300), ldp.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fourier, err := ldp.Fourier(d, eps, 2)
	if err != nil {
		log.Fatal(err)
	}
	rr := ldp.RandomizedResponse(n, eps)
	const alpha = 0.01
	for _, m := range []ldp.Mechanism{mech, fourier, rr} {
		sc, err := ldp.SampleComplexity(m, w, alpha)
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		fmt.Printf("  %-22s needs %8.0f users for α=%.2f\n", m.Name(), sc, alpha)
	}

	// Simulate a fleet: flags are correlated (flag 1 implies flag 0 with high
	// probability), which is exactly what marginal queries reveal.
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	const users = 40000
	for i := 0; i < users; i++ {
		var state int
		if rng.Float64() < 0.6 {
			state |= 1 // flag 0 popular
			if rng.Float64() < 0.8 {
				state |= 2 // flag 1 mostly со-occurs with flag 0
			}
		}
		for b := 2; b < d; b++ {
			if rng.Float64() < 0.15 {
				state |= 1 << b
			}
		}
		x[state]++
	}

	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	// The fleet reports into two regional collectors (say, one per ingestion
	// site); each worker holds a Handle pinned to its own collector shard, so
	// arrivals never contend.
	const regions = 2
	const workers = 4
	cols := make([]*ldp.Collector, regions)
	for r := range cols {
		if cols[r], err = ldp.NewCollector(agg, w, 0); err != nil {
			log.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			h := cols[wk%regions].Handle()
			wrng := rand.New(rand.NewSource(int64(100 + wk)))
			for state := wk; state < n; state += workers {
				for j := 0; j < int(x[state]); j++ {
					rep, err := rz.Randomize(state, wrng)
					if err != nil {
						log.Fatal(err)
					}
					if err := h.Ingest(rep); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	// Fan-in: each region freezes one immutable Snapshot, Merge sums them
	// (rejecting a mechanism mismatch by digest), and a single Estimator
	// answers the merged view exactly as if one collector had seen the whole
	// fleet.
	snap := cols[0].Snap()
	for _, c := range cols[1:] {
		if snap, err = snap.Merge(c.Snap()); err != nil {
			log.Fatal(err)
		}
	}
	estimator, err := ldp.NewEstimator(agg, w)
	if err != nil {
		log.Fatal(err)
	}
	est, err := estimator.ConsistentAnswers(snap)
	if err != nil {
		log.Fatal(err)
	}
	truth := w.MatVec(x)

	// The (flag0, flag1) joint table is the first marginal block: subset
	// {0,1} is the first 2-subset in ascending bitmask order.
	fmt.Printf("\njoint usage of flag0 and flag1 (%d users):\n", users)
	labels := []string{"00", "10", "01", "11"}
	for t := 0; t < 4; t++ {
		fmt.Printf("  flags=%s  truth %7.0f  estimate %7.0f\n", labels[t], truth[t], est[t])
	}
	// Sanity: the strong correlation must be visible through the noise.
	if est[3] < est[2] {
		fmt.Println("  warning: correlation not recovered (unexpectedly high noise)")
	} else {
		fmt.Println("  correlation flag1⇒flag0 recovered under LDP ✓")
	}
}
