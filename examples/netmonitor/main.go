// Network monitoring: an ISP wants latency percentiles and hot-spot windows
// from client-reported round-trip times, without learning any individual's
// latency. Latencies are bucketed into a 128-cell domain; the analyst's
// workload mixes all range queries (for arbitrary percentile lookups) with
// heavily-weighted width-8 sliding windows (for hot-spot detection). This
// exercises the library's weighted-workload support (Section 1: the workload
// expresses "the exact queries they care about most, and their relative
// importance") and the WNNLS consistency extension in the sparse-data regime.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	ldp "repro"
)

func main() {
	const (
		n     = 128
		eps   = 1.0
		users = 20000
	)
	// Weighted union: ranges matter, windows matter 3× more.
	w := ldp.Stacked("Ranges+Windows",
		[]ldp.Workload{ldp.AllRange(n), ldp.WidthRange(n, 8)},
		[]float64{1, 3},
	)
	fmt.Printf("workload: %d queries over %d latency buckets\n", w.Queries(), n)

	mech, err := ldp.Optimize(context.Background(), w, eps,
		ldp.WithIterations(250), ldp.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	lb, err := ldp.LowerBoundObjective(w, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized mechanism objective %.4g (≥ SVD lower bound %.4g, gap %.2fx)\n",
		mech.Objective, lb, mech.Objective/lb)

	// Latency population: bimodal — a fast path around bucket 20 and a
	// congested tail around bucket 90.
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	for i := 0; i < users; i++ {
		var b int
		if rng.Float64() < 0.7 {
			b = int(20 + 6*rng.NormFloat64())
		} else {
			b = int(90 + 10*rng.NormFloat64())
		}
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		x[b]++
	}

	// Full protocol through the streaming pipeline, then WNNLS for
	// consistency.
	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	client, err := ldp.NewClient(rz)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	server, err := ldp.NewServer(agg, w)
	if err != nil {
		log.Fatal(err)
	}
	for u, cnt := range x {
		for j := 0; j < int(cnt); j++ {
			rep, err := client.Randomize(u, rng)
			if err != nil {
				log.Fatal(err)
			}
			if err := server.Ingest(rep); err != nil {
				log.Fatal(err)
			}
		}
	}
	consistent, err := server.ConsistentAnswers()
	if err != nil {
		log.Fatal(err)
	}
	truth := w.MatVec(x)

	// Percentiles from range queries [0, k] (rows k of the AllRange block
	// with start 0 are the first n rows at weight 1).
	fmt.Println("\nlatency percentiles (bucket index):")
	for _, pct := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("  p%-4g truth: %3d   estimate: %3d\n",
			100*pct, percentile(truth[:n], float64(users), pct), percentile(consistent[:n], float64(users), pct))
	}

	// Hot-spot: the heaviest width-8 window lives in the weighted block.
	winTruth := truth[w.Queries()-(n-8+1):]
	winEst := consistent[w.Queries()-(n-8+1):]
	ti, ei := argmax(winTruth), argmax(winEst)
	fmt.Printf("\nhot-spot window: truth [%d,%d], estimate [%d,%d]\n", ti, ti+7, ei, ei+7)
	if int(math.Abs(float64(ti-ei))) <= 8 {
		fmt.Println("hot-spot localized within one window width under LDP ✓")
	}
}

// percentile finds the first prefix bucket whose CDF value reaches p·total.
func percentile(prefixAnswers []float64, total, p float64) int {
	for k, v := range prefixAnswers {
		if v >= p*total {
			return k
		}
	}
	return len(prefixAnswers) - 1
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
