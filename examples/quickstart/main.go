// Quickstart: optimize an LDP mechanism for the queries you actually care
// about, check how many users it needs compared to off-the-shelf mechanisms,
// and run the full client/collector protocol on simulated users. The same
// streaming pipeline then runs a frequency oracle — one protocol API serves
// both mechanism families.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	ldp "repro"
)

func main() {
	// 1. Declare the workload: the analyst wants the empirical CDF over a
	//    64-bucket domain (all prefix ranges).
	const n = 64
	const eps = 1.0
	w := ldp.Prefix(n)

	// 2. Optimize a mechanism for exactly those queries at ε = 1.
	//    This is a one-time offline cost; the strategy can be saved with
	//    ldp.SaveStrategy and shipped to clients. The context cancels a run
	//    that outlives its budget.
	mech, err := ldp.Optimize(context.Background(), w, eps,
		ldp.WithIterations(300), ldp.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized strategy: %d outputs over %d user types (objective %.4g after %d iterations)\n",
		mech.Strategy().Outputs(), n, mech.Objective, mech.Iterations)

	// 3. How much better is workload adaptation? Compare the number of users
	//    each mechanism needs for 1% normalized variance (the paper's
	//    evaluation metric).
	const alpha = 0.01
	optSC, err := ldp.SampleComplexity(mech, w, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nusers needed for α=%.2f on the Prefix workload:\n", alpha)
	fmt.Printf("  %-22s %10.0f\n", "Optimized", optSC)
	competitors, err := ldp.Competitors(w, eps)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range competitors {
		sc, err := ldp.SampleComplexity(m, w, alpha)
		if err != nil {
			continue
		}
		fmt.Printf("  %-22s %10.0f  (%.1fx more)\n", m.Name(), sc, sc/optSC)
	}

	// 4. Run the protocol: 30 000 users with a skewed type distribution.
	//    Clients randomize locally through the strategy's Randomizer; the
	//    collector absorbs the reports through its Aggregator — sharded, so
	//    many handler goroutines can ingest concurrently.
	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	client, err := ldp.NewClient(rz)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	truthX := make([]float64, n)
	for u := range truthX {
		truthX[u] = float64(1000 / (u + 1)) // Zipf-ish population
	}
	for u, cnt := range truthX {
		for i := 0; i < int(cnt); i++ {
			rep, err := client.Randomize(u, rng)
			if err != nil {
				log.Fatal(err)
			}
			if err := col.Ingest(rep); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 5. Reconstruct through the one read API: Snap() freezes a consistent
	//    Snapshot of the collector, and an Estimator answers it — unbiased,
	//    WNNLS-consistent (Appendix A), and with closed-form confidence
	//    intervals. The same Estimator answers a remote or merged snapshot.
	truth := w.MatVec(truthX)
	estimator, err := ldp.NewEstimator(agg, w)
	if err != nil {
		log.Fatal(err)
	}
	snap := col.Snap()
	unbiased, err := estimator.Answers(snap)
	if err != nil {
		log.Fatal(err)
	}
	est, err := estimator.ConsistentAnswers(snap)
	if err != nil {
		log.Fatal(err)
	}
	// The intervals are centered on the unbiased answers (that is what the
	// closed-form variance describes); the consistent column is the
	// post-processed point estimate.
	cis, err := estimator.ConfidenceIntervals(snap, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollected %.0f reports; selected CDF estimates:\n", snap.Count())
	for _, q := range []int{0, n / 4, n / 2, n - 1} {
		fmt.Printf("  P(X ≤ %2d): truth %7.0f, unbiased %7.0f (95%% CI [%.0f, %.0f]), consistent %7.0f\n",
			q, truth[q], unbiased[q], cis[q].Low, cis[q].High, est[q])
	}

	// 6. The same pipeline, a different mechanism family: a frequency oracle
	//    is its own Randomizer and Aggregator, so nothing else changes.
	olh, err := ldp.NewOLH(n, eps)
	if err != nil {
		log.Fatal(err)
	}
	oclient, err := ldp.NewClient(olh)
	if err != nil {
		log.Fatal(err)
	}
	ocol, err := ldp.NewCollector(olh, w, 0)
	if err != nil {
		log.Fatal(err)
	}
	for u, cnt := range truthX {
		for i := 0; i < int(cnt); i++ {
			rep, err := oclient.Randomize(u, rng)
			if err != nil {
				log.Fatal(err)
			}
			if err := ocol.Ingest(rep); err != nil {
				log.Fatal(err)
			}
		}
	}
	oestimator, err := ldp.NewEstimator(olh, w)
	if err != nil {
		log.Fatal(err)
	}
	osnap := ocol.Snap()
	oest, err := oestimator.ConsistentAnswers(osnap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame pipeline through OLH (%.0f reports):\n", osnap.Count())
	for _, q := range []int{0, n / 4, n / 2, n - 1} {
		fmt.Printf("  P(X ≤ %2d): truth %7.0f, estimate %7.0f\n", q, truth[q], oest[q])
	}
}
