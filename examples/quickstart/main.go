// Quickstart: optimize an LDP mechanism for the queries you actually care
// about, check how many users it needs compared to off-the-shelf mechanisms,
// and run the full client/server protocol on simulated users.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ldp "repro"
)

func main() {
	// 1. Declare the workload: the analyst wants the empirical CDF over a
	//    64-bucket domain (all prefix ranges).
	const n = 64
	const eps = 1.0
	w := ldp.Prefix(n)

	// 2. Optimize a mechanism for exactly those queries at ε = 1.
	//    This is a one-time offline cost; the strategy can be saved with
	//    ldp.SaveStrategy and shipped to clients.
	mech, err := ldp.Optimize(w, eps, &ldp.OptimizeOptions{Iters: 300, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized strategy: %d outputs over %d user types (objective %.4g after %d iterations)\n",
		mech.Strategy().Outputs(), n, mech.Objective, mech.Iterations)

	// 3. How much better is workload adaptation? Compare the number of users
	//    each mechanism needs for 1% normalized variance (the paper's
	//    evaluation metric).
	const alpha = 0.01
	optSC, err := ldp.SampleComplexity(mech, w, alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nusers needed for α=%.2f on the Prefix workload:\n", alpha)
	fmt.Printf("  %-22s %10.0f\n", "Optimized", optSC)
	competitors, err := ldp.Competitors(w, eps)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range competitors {
		sc, err := ldp.SampleComplexity(m, w, alpha)
		if err != nil {
			continue
		}
		fmt.Printf("  %-22s %10.0f  (%.1fx more)\n", m.Name(), sc, sc/optSC)
	}

	// 4. Run the protocol: 30 000 users with a skewed type distribution.
	client, err := ldp.NewClient(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	server, err := ldp.NewServer(mech.Strategy(), w)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	truthX := make([]float64, n)
	for u := range truthX {
		truthX[u] = float64(1000 / (u + 1)) // Zipf-ish population
	}
	for u, cnt := range truthX {
		for i := 0; i < int(cnt); i++ {
			if err := server.Add(client.Respond(u, rng)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 5. Reconstruct. Answers() is unbiased; ConsistentAnswers() additionally
	//    enforces non-negativity and the known total (WNNLS, Appendix A).
	truth := w.MatVec(truthX)
	est, err := server.ConsistentAnswers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollected %.0f reports; selected CDF estimates:\n", server.Count())
	for _, q := range []int{0, n / 4, n / 2, n - 1} {
		fmt.Printf("  P(X ≤ %2d): truth %7.0f, estimate %7.0f\n", q, truth[q], est[q])
	}
}
