// Geo heatmap: a mobility service wants coarse pick-up density over a city
// grid under local differential privacy — every rectangular zone count on a
// 16×16 grid. The workload is the Kronecker product AllRange ⊗ AllRange
// (33 856 rectangle queries over 256 cells), and because the city's demand is
// concentrated downtown, the mechanism is optimized against a prior
// (footnote 2 of the paper): accuracy is spent where the riders actually are.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	ldp "repro"
)

const (
	side  = 8
	n     = side * side
	eps   = 1.0
	users = 30000
)

func main() {
	w := ldp.Product(ldp.AllRange(side), ldp.AllRange(side))
	fmt.Printf("workload: %d rectangle queries over a %dx%d grid\n", w.Queries(), side, side)

	// Demand prior: a Gaussian bump around downtown (5, 3).
	prior := make([]float64, n)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			dr, dc := float64(r-5), float64(c-3)
			prior[r*side+c] = math.Exp(-(dr*dr + dc*dc) / 3)
		}
	}

	mech, err := ldp.Optimize(context.Background(), w, eps,
		ldp.WithPrior(prior), ldp.WithIterations(200), ldp.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	uniformMech, err := ldp.Optimize(context.Background(), w, eps,
		ldp.WithIterations(200), ldp.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	// Expected error on prior-shaped data, from the closed-form Theorem 3.4.
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(12))
	cdf := make([]float64, n)
	run := 0.0
	for i, p := range prior {
		run += p
		cdf[i] = run
	}
	for i := 0; i < users; i++ {
		u := rng.Float64() * run
		lo := 0
		for lo < n-1 && cdf[lo] < u {
			lo++
		}
		x[lo]++
	}
	vp, err := ldp.Evaluate(mech, w)
	if err != nil {
		log.Fatal(err)
	}
	vu, err := ldp.Evaluate(uniformMech, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected total squared error on downtown-shaped data:\n")
	fmt.Printf("  prior-weighted mechanism: %.4g\n", vp.OnData(x))
	fmt.Printf("  uniform mechanism:        %.4g  (%.2fx worse)\n",
		vu.OnData(x), vu.OnData(x)/vp.OnData(x))

	// Run the protocol and read out a few rectangles.
	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	client, err := ldp.NewClient(rz)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		log.Fatal(err)
	}
	server, err := ldp.NewServer(agg, w)
	if err != nil {
		log.Fatal(err)
	}
	for u, cnt := range x {
		for j := 0; j < int(cnt); j++ {
			rep, err := client.Randomize(u, rng)
			if err != nil {
				log.Fatal(err)
			}
			if err := server.Ingest(rep); err != nil {
				log.Fatal(err)
			}
		}
	}
	est, err := server.ConsistentAnswers()
	if err != nil {
		log.Fatal(err)
	}
	truth := w.MatVec(x)

	// Rectangle [r1,r2]×[c1,c2] index into the Kronecker row ordering.
	rangeIdx := func(i, j int) int { return i*side - i*(i-1)/2 + (j - i) }
	rect := func(r1, r2, c1, c2 int) int {
		return rangeIdx(r1, r2)*(side*(side+1)/2) + rangeIdx(c1, c2)
	}
	fmt.Println("\nzone counts (riders):")
	zones := []struct {
		name           string
		r1, r2, c1, c2 int
	}{
		{"downtown core", 4, 6, 2, 4},
		{"north half", 0, 3, 0, 7},
		{"whole city", 0, 7, 0, 7},
		{"far suburb", 0, 1, 6, 7},
	}
	for _, z := range zones {
		q := rect(z.r1, z.r2, z.c1, z.c2)
		fmt.Printf("  %-14s truth %7.0f  estimate %7.0f\n", z.name, truth[q], est[q])
	}
}
