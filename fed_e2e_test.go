package ldp_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	ldp "repro"
)

// The fan-in acceptance criterion: two ldpserve shards each ingesting half
// of a population, merged via Snapshot.Merge (the cmd/ldpfed path:
// RemoteCollector.Snap from each loopback server, then Merge), must produce
// answers bit-identical to a single collector ingesting the whole population
// at the same per-client seeds — for the strategy mechanism and all three
// frequency oracles. Accumulators are integer-valued and merging is exact,
// so "identical" means bit-for-bit, not within tolerance.
func TestFedMergeMatchesSingleCollector(t *testing.T) {
	const n, users, seed = 16, 2000, 11
	w := ldp.Prefix(n)
	x := make([]float64, n)
	{
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < users; i++ {
			x[rng.Intn(n)]++
		}
	}
	for name, m := range e2eMechanisms(t, n) {
		t.Run(name, func(t *testing.T) {
			// Randomize once at fixed per-client seeds; both deployments see
			// the identical report stream.
			client, err := ldp.NewClient(m.rz)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 1))
			var reports []ldp.Report
			for u, cnt := range x {
				for j := 0; j < int(cnt); j++ {
					rep, err := client.Randomize(u, rng)
					if err != nil {
						t.Fatal(err)
					}
					reports = append(reports, rep)
				}
			}

			est, err := ldp.NewEstimator(m.agg, w)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: one collector sees the whole population.
			single, err := ldp.NewServer(m.agg, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := single.IngestBatch(reports); err != nil {
				t.Fatal(err)
			}
			wantUnbiased, err := est.Answers(single.Snap())
			if err != nil {
				t.Fatal(err)
			}
			wantCons, err := est.ConsistentAnswers(single.Snap())
			if err != nil {
				t.Fatal(err)
			}

			// Fan-in: two loopback ldpserve shards, half the population each.
			info := ldp.MechanismInfoOf(m.agg)
			snaps := make([]ldp.Snapshot, 2)
			half := len(reports) / 2
			for i, part := range [][]ldp.Report{reports[:half], reports[half:]} {
				hs := startCollectorServer(t, m.agg, w, info)
				rcol, err := ldp.NewRemoteCollector(hs.URL, m.agg, w,
					ldp.WithRemoteBatch(113), ldp.WithRemoteHTTPClient(hs.Client()))
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				// The ldpfed handshake: verify the shard's identity (digest
				// included) before trusting its snapshot.
				if err := rcol.Verify(ctx, info.Mechanism, info.Epsilon, info.Digest); err != nil {
					t.Fatal(err)
				}
				if err := rcol.IngestBatch(ctx, part); err != nil {
					t.Fatal(err)
				}
				if err := rcol.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				h, err := rcol.Healthz(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if h.Count != float64(len(part)) {
					t.Fatalf("shard %d holds %v reports, want %d", i, h.Count, len(part))
				}
				if snaps[i], err = rcol.Snap(ctx); err != nil {
					t.Fatal(err)
				}
				if snaps[i].Epoch() == 0 {
					t.Fatalf("shard %d snapshot carries no epoch", i)
				}
			}
			merged, err := ldp.MergeSnapshots(snaps...)
			if err != nil {
				t.Fatal(err)
			}
			if merged.Count() != float64(len(reports)) {
				t.Fatalf("merged count %v, want %d", merged.Count(), len(reports))
			}

			gotUnbiased, err := est.Answers(merged)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantUnbiased {
				if gotUnbiased[i] != wantUnbiased[i] {
					t.Fatalf("unbiased[%d]: merged %v != single %v", i, gotUnbiased[i], wantUnbiased[i])
				}
			}
			gotCons, err := est.ConsistentAnswers(merged)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantCons {
				if gotCons[i] != wantCons[i] {
					t.Fatalf("consistent[%d]: merged %v != single %v", i, gotCons[i], wantCons[i])
				}
			}
		})
	}
}

// TestFedMergeConcurrent is the race-enabled fan-in test: 2 loopback servers
// × 4 concurrent clients (2 per shard) stream keyed batches, then the two
// shard snapshots merge and must equal a single-threaded ingest of the same
// reports. Under -race in CI this exercises sharded ingest, the snapshot
// cache + epoch, the server's idempotency LRU, and Snapshot.Merge across
// real HTTP handler goroutines.
func TestFedMergeConcurrent(t *testing.T) {
	const n, servers, clientsPer, perClient = 32, 2, 2, 1200
	w := ldp.Histogram(n)
	mech := e2eMechanisms(t, n)["strategy"]
	info := ldp.MechanismInfoOf(mech.agg)

	// Pre-randomize every client's reports so the concurrent phase is pure
	// transport + collector.
	rng := rand.New(rand.NewSource(21))
	all := make([][]ldp.Report, servers*clientsPer)
	for c := range all {
		all[c] = make([]ldp.Report, perClient)
		for i := range all[c] {
			rep, err := mech.rz.Randomize(rng.Intn(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			all[c][i] = rep
		}
	}

	// newShardClient[s] dials shard s through its test server's transport.
	newShardClient := make([]func() (*ldp.RemoteCollector, error), servers)
	for s := 0; s < servers; s++ {
		hs := startCollectorServer(t, mech.agg, w, info)
		newShardClient[s] = func() (*ldp.RemoteCollector, error) {
			return ldp.NewRemoteCollector(hs.URL, mech.agg, w,
				ldp.WithRemoteBatch(64), ldp.WithRemoteHTTPClient(hs.Client()))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(all))
	for c := range all {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rcol, err := newShardClient[c%servers]()
			if err != nil {
				errs <- err
				return
			}
			ctx := context.Background()
			reports := all[c]
			for i := 0; i < len(reports); i += 300 {
				end := i + 300
				if end > len(reports) {
					end = len(reports)
				}
				if err := rcol.IngestBatch(ctx, reports[i:end]); err != nil {
					errs <- err
					return
				}
				// Interleave snapshot reads so epoch advancement races with
				// writers.
				if _, err := rcol.Snap(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- rcol.Flush(ctx)
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Merge the shard snapshots and compare against a serial reference.
	snaps := make([]ldp.Snapshot, servers)
	for s := range snaps {
		rcol, err := newShardClient[s]()
		if err != nil {
			t.Fatal(err)
		}
		if snaps[s], err = rcol.Snap(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := ldp.MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ldp.NewServer(mech.agg, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range all {
		if err := ref.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != float64(servers*clientsPer*perClient) {
		t.Fatalf("merged count %v, want %d", merged.Count(), servers*clientsPer*perClient)
	}
	refState, gotState := ref.Snap().State(), merged.State()
	for i := range refState {
		if gotState[i] != refState[i] {
			t.Fatalf("state[%d]: merged %v != serial %v", i, gotState[i], refState[i])
		}
	}
}
