package ldp_test

import (
	"math"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// The streaming read path must be bit-identical to the materialized one:
// VarianceStream yields exactly Variance's entries and AnswerStream pairs
// them with exactly Answers' entries, for both mechanism families and for
// every workload with a per-row view (including composed ones).
func TestStreamMatchesMaterialized(t *testing.T) {
	const n, users = 16, 400
	aggs := map[string]func() (ldp.Aggregator, error){
		"oracle":   func() (ldp.Aggregator, error) { return ldp.NewOUE(n, 1.0) },
		"strategy": func() (ldp.Aggregator, error) { return ldp.NewAggregator(benchfix.RRStrategy(n, 1.0)) },
	}
	workloads := []ldp.Workload{
		ldp.Histogram(n), ldp.Prefix(n), ldp.AllRange(n),
		ldp.WidthRange(n, 3), ldp.Parity(4),
	}
	for name, mk := range aggs {
		t.Run(name, func(t *testing.T) {
			agg, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			snap := ingestSkewed(t, agg, workloads[0], users, 41)
			for _, w := range workloads {
				est, err := ldp.NewEstimator(agg, w)
				if err != nil {
					t.Fatal(err)
				}
				wantA, err := est.Answers(snap)
				if err != nil {
					t.Fatal(err)
				}
				wantV, err := est.Variance(snap)
				if err != nil {
					t.Fatal(err)
				}
				rows := 0
				err = est.AnswerStream(snap, 0.9, func(qa ldp.QueryAnswer) bool {
					if qa.Index != rows {
						t.Fatalf("%s: stream out of order: row %d at position %d", w.Name(), qa.Index, rows)
					}
					if math.Float64bits(qa.Answer) != math.Float64bits(wantA[qa.Index]) {
						t.Fatalf("%s answer %d: streamed %v, materialized %v", w.Name(), qa.Index, qa.Answer, wantA[qa.Index])
					}
					if math.Float64bits(qa.Variance) != math.Float64bits(wantV[qa.Index]) {
						t.Fatalf("%s variance %d: streamed %v, materialized %v", w.Name(), qa.Index, qa.Variance, wantV[qa.Index])
					}
					if qa.CI.Low > qa.Answer || qa.CI.High < qa.Answer {
						t.Fatalf("%s CI %d does not contain its answer", w.Name(), qa.Index)
					}
					rows++
					return true
				})
				if err != nil {
					t.Fatalf("%s: %v", w.Name(), err)
				}
				if rows != len(wantA) {
					t.Fatalf("%s: streamed %d of %d rows", w.Name(), rows, len(wantA))
				}
			}
		})
	}
}

// Early termination: returning false from the callback stops the stream
// without error.
func TestStreamEarlyStop(t *testing.T) {
	const n = 16
	agg, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap := ingestSkewed(t, agg, ldp.Histogram(n), 100, 5)
	est, err := ldp.NewEstimator(agg, ldp.AllRange(n))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	if err := est.AnswerStream(snap, 0.95, func(ldp.QueryAnswer) bool {
		seen++
		return seen < 7
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Fatalf("stream continued past the stop: %d rows", seen)
	}
}

// Acceptance: AllRange at n=512 declares 131,328 queries over a 512-wide
// domain — 67,239,936 variance matrix elements, past the 2^26 materialization
// bound — so Variance refuses, while the streaming path answers every row.
// The first n rows of AllRange are exactly Prefix's rows (ranges [0..j]), and
// Prefix at this domain is materializable, so a slice of the streamed result
// is cross-checked bit-for-bit against a materialized read.
func TestAnswerStreamBeyondMaterializationBound(t *testing.T) {
	const n, users = 512, 800
	agg, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	snap := ingestSkewed(t, agg, ldp.Histogram(n), users, 61)

	wide := ldp.AllRange(n)
	est, err := ldp.NewEstimator(agg, wide)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Variance(snap); err == nil {
		t.Fatal("materialized variance unexpectedly fit; the test is not past the bound")
	}

	prefixEst, err := ldp.NewEstimator(agg, ldp.Prefix(n))
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := prefixEst.Answers(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := prefixEst.Variance(snap)
	if err != nil {
		t.Fatal(err)
	}

	total := wide.Queries()
	if total != n*(n+1)/2 {
		t.Fatalf("AllRange(%d) declares %d queries", n, total)
	}
	rows := 0
	err = est.AnswerStream(snap, 0.95, func(qa ldp.QueryAnswer) bool {
		if qa.Index < n {
			// Range [0..j] ≡ Prefix row j.
			if math.Float64bits(qa.Answer) != math.Float64bits(wantA[qa.Index]) {
				t.Fatalf("row %d answer: streamed %v, prefix %v", qa.Index, qa.Answer, wantA[qa.Index])
			}
			if math.Float64bits(qa.Variance) != math.Float64bits(wantV[qa.Index]) {
				t.Fatalf("row %d variance: streamed %v, prefix %v", qa.Index, qa.Variance, wantV[qa.Index])
			}
		}
		if qa.Variance < 0 || math.IsNaN(qa.Variance) {
			t.Fatalf("row %d: invalid variance %v", qa.Index, qa.Variance)
		}
		rows++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != total {
		t.Fatalf("streamed %d of %d rows", rows, total)
	}
}
