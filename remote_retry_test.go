package ldp_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

// The at-least-once regression the idempotency keys exist for: the server
// absorbs a batch, the HTTP response is lost, the client retries — and the
// reports must land exactly once. Before keyed batches the retry was a
// double absorb; now the server recognizes the batch's key and replays the
// recorded response instead.
func TestRemoteRetryAfterLostResponseAbsorbsOnce(t *testing.T) {
	const n, total = 16, 95
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := ldp.NewCollectorServer(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the response of the first POST /reports *after* the collector has
	// fully absorbed it: the inner handler runs against a throwaway recorder,
	// then the connection is aborted, so the client sees a transport error
	// for a request the server in fact applied.
	var posts atomic.Int64
	outer := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodPost && posts.Add(1) == 1 {
			inner.ServeHTTP(httptest.NewRecorder(), req)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(rw, req)
	})
	hs := httptest.NewServer(outer)
	t.Cleanup(hs.Close)

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(512),
		ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < total; i++ {
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % n}); err != nil {
			t.Fatal(err)
		}
	}
	// First Flush ships the whole buffer as one keyed batch; the server
	// absorbs it and the response dies.
	if err := rcol.Flush(ctx); err == nil {
		t.Fatal("flush through the aborted response unexpectedly succeeded")
	}
	if got := col.Count(); got != total {
		t.Fatalf("server absorbed %v reports before the retry, want %d", got, total)
	}
	// The retry re-sends the same batch under the same key; the server must
	// replay, not re-absorb.
	if err := rcol.Flush(ctx); err != nil {
		t.Fatalf("retried flush: %v", err)
	}
	snap := col.Snap()
	if snap.Count() != total {
		t.Fatalf("server holds %v reports after the retry, want exactly %d (duplicate absorb)", snap.Count(), total)
	}
	var mass float64
	for _, v := range snap.State() {
		mass += v
	}
	if mass != total {
		t.Fatalf("accumulator mass %v, want %d (loss or duplication)", mass, total)
	}
}

// A lost response on an intermediate batch must not stall the later ones:
// the retry ships the unacknowledged batch (replayed) and everything behind
// it, and the final state is exactly one copy of every report.
func TestRemoteRetryInterleavedWithIngestion(t *testing.T) {
	const n = 16
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := ldp.NewCollectorServer(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	// Lose every other POST's response, always after the absorb.
	var posts atomic.Int64
	outer := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodPost && posts.Add(1)%2 == 1 {
			inner.ServeHTTP(httptest.NewRecorder(), req)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(rw, req)
	})
	hs := httptest.NewServer(outer)
	t.Cleanup(hs.Close)

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(10),
		ldp.WithRemoteHTTPClient(hs.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const total = 95
	for i := 0; i < total; i++ {
		// Errors are expected whenever a full batch ships into an outage;
		// the contract is that nothing is lost and nothing duplicates.
		_ = rcol.Ingest(ctx, ldp.Report{Index: i % n})
	}
	for attempt := 0; attempt < 2*total; attempt++ {
		if err := rcol.Flush(ctx); err == nil {
			break
		}
	}
	snap := col.Snap()
	if snap.Count() != total {
		t.Fatalf("server holds %v reports after retries, want exactly %d", snap.Count(), total)
	}
	var mass float64
	for _, v := range snap.State() {
		mass += v
	}
	if mass != total {
		t.Fatalf("accumulator mass %v, want %d (loss or duplication)", mass, total)
	}
}
