package ldp_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	ldp "repro"
	"repro/internal/benchfix"
)

// fastRetryPolicy is a fully deterministic retry discipline for tests: no
// jitter, no real sleeping (the schedule is recorded into *slept when
// non-nil), bounded attempts.
func fastRetryPolicy(attempts int, slept *[]time.Duration) ldp.RetryPolicy {
	return ldp.RetryPolicy{
		MaxAttempts:    attempts,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0,
		Rand:           func() float64 { return 0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			if slept != nil {
				*slept = append(*slept, d)
			}
			return ctx.Err()
		},
	}
}

// retryHarness builds a collector behind an outer handler that kills the
// response of selected POSTs after the collector has fully absorbed them —
// the lost-response failure idempotency keys exist for.
func retryHarness(t *testing.T, n int, loseResponse func(post int64) bool) (*ldp.Collector, *httptest.Server, ldp.Aggregator, ldp.Workload) {
	t.Helper()
	w := ldp.Histogram(n)
	s := benchfix.RRStrategy(n, 1.0)
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := ldp.NewCollectorServer(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	var posts atomic.Int64
	outer := http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodPost && loseResponse(posts.Add(1)) {
			inner.ServeHTTP(httptest.NewRecorder(), req)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(rw, req)
	})
	hs := httptest.NewServer(outer)
	t.Cleanup(hs.Close)
	return col, hs, agg, w
}

// The at-least-once regression the idempotency keys exist for, under the
// fail-fast policy (MaxAttempts 1, the pre-backoff behavior): the server
// absorbs a batch, the HTTP response is lost, the client surfaces the error
// — and the caller-driven retry must land exactly once via key replay.
func TestRemoteRetryAfterLostResponseAbsorbsOnce(t *testing.T) {
	const n, total = 16, 95
	col, hs, agg, w := retryHarness(t, n, func(post int64) bool { return post == 1 })

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(512),
		ldp.WithRemoteHTTPClient(hs.Client()),
		ldp.WithRemoteRetryPolicy(fastRetryPolicy(1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < total; i++ {
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % n}); err != nil {
			t.Fatal(err)
		}
	}
	// First Flush ships the whole buffer as one keyed batch; the server
	// absorbs it and the response dies. With retries disabled the failure
	// surfaces to the caller.
	if err := rcol.Flush(ctx); err == nil {
		t.Fatal("flush through the aborted response unexpectedly succeeded")
	}
	if got := col.Count(); got != total {
		t.Fatalf("server absorbed %v reports before the retry, want %d", got, total)
	}
	// The retry re-sends the same batch under the same key; the server must
	// replay, not re-absorb.
	if err := rcol.Flush(ctx); err != nil {
		t.Fatalf("retried flush: %v", err)
	}
	assertExactMass(t, col, total)
}

// With the retry policy on (the default posture), a lost response never
// reaches the caller at all: ship backs off, retries under the same key, the
// server replays, and one Flush call delivers everything exactly once. The
// pinned deterministic policy also asserts the backoff schedule taken.
func TestRemoteRetryPolicyRetriesLostResponseInternally(t *testing.T) {
	const n, total = 16, 95
	col, hs, agg, w := retryHarness(t, n, func(post int64) bool { return post == 1 })

	var slept []time.Duration
	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(512),
		ldp.WithRemoteHTTPClient(hs.Client()),
		ldp.WithRemoteRetryPolicy(fastRetryPolicy(4, &slept)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < total; i++ {
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rcol.Flush(ctx); err != nil {
		t.Fatalf("flush with retries enabled: %v", err)
	}
	// Exactly one pause (the first retry already succeeded via replay), at
	// the pinned initial backoff.
	if len(slept) != 1 || slept[0] != 10*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [10ms]", slept)
	}
	assertExactMass(t, col, total)
}

// A lost response on an intermediate batch must not stall the later ones:
// the retrying ship replays the unacknowledged batch and everything behind
// it, and the final state is exactly one copy of every report — here with
// every other response dying.
func TestRemoteRetryInterleavedWithIngestion(t *testing.T) {
	const n, total = 16, 95
	col, hs, agg, w := retryHarness(t, n, func(post int64) bool { return post%2 == 1 })

	rcol, err := ldp.NewRemoteCollector(hs.URL, agg, w, ldp.WithRemoteBatch(10),
		ldp.WithRemoteHTTPClient(hs.Client()),
		ldp.WithRemoteRetryPolicy(fastRetryPolicy(4, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < total; i++ {
		// With half of all responses dying, the internal retry absorbs every
		// failure: no error should surface at any point.
		if err := rcol.Ingest(ctx, ldp.Report{Index: i % n}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if err := rcol.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	assertExactMass(t, col, total)
}

// assertExactMass checks the collector holds exactly total reports of total
// mass — the exactly-once invariant (no loss, no duplication).
func assertExactMass(t *testing.T, col *ldp.Collector, total float64) {
	t.Helper()
	snap := col.Snap()
	if snap.Count() != total {
		t.Fatalf("server holds %v reports, want exactly %v", snap.Count(), total)
	}
	var mass float64
	for _, v := range snap.State() {
		mass += v
	}
	if mass != total {
		t.Fatalf("accumulator mass %v, want %v (loss or duplication)", mass, total)
	}
}
