package ldp

import (
	"fmt"
	"io"
	"net/http"

	"repro/internal/transport"
)

// queryStatusf builds an error the transport's /query handler maps to an HTTP
// status, so validation failures answer cleanly instead of 422.
func queryStatusf(status int, format string, args ...any) error {
	return &transport.StatusError{StatusCode: status, Msg: fmt.Sprintf(format, args...)}
}

// answerQuery resolves one decoded query request against a snapshot and
// streams the result frames to out. The pool supplies (and caches) the
// estimator, so repeated queries for the same workload never rebuild the
// variance model. Validation errors surface before the first byte is written,
// which is what lets the transport turn them into HTTP statuses.
func answerQuery(pool *EstimatorPool, agg Aggregator, snap Snapshot, q transport.QueryRequest, out io.Writer) error {
	domain := agg.Domain()
	if q.Domain != 0 && q.Domain != domain {
		return queryStatusf(http.StatusBadRequest, "query names domain %d, this collector aggregates domain %d", q.Domain, domain)
	}
	w, err := WorkloadByName(q.Workload, domain)
	if err != nil {
		return queryStatusf(http.StatusBadRequest, "%v", err)
	}
	if q.Digest != "" {
		if got := WorkloadDigest(w); got != q.Digest {
			return queryStatusf(http.StatusBadRequest,
				"workload %q at domain %d digests %s, query expects %s — client and server disagree on the workload", q.Workload, domain, got, q.Digest)
		}
	}
	est, err := pool.Estimator(agg, w)
	if err != nil {
		return err
	}
	if err := est.Check(snap); err != nil {
		return queryStatusf(http.StatusConflict, "%v", err)
	}
	info := transport.QueryResultInfo{
		Count:       snap.Count(),
		Epoch:       snap.Epoch(),
		TotalRows:   w.Queries(),
		HasVariance: q.WantVariance || q.WantCI,
		HasCI:       q.WantCI,
	}
	qw, err := transport.NewQueryResultWriter(out, info)
	if err != nil {
		return err
	}
	var werr error
	switch {
	case q.WantCI:
		err = est.AnswerStream(snap, q.Level, func(a QueryAnswer) bool {
			werr = qw.WriteRow(transport.QueryRow{Answer: a.Answer, Variance: a.Variance, Low: a.CI.Low, High: a.CI.High})
			return werr == nil
		})
	case q.WantVariance:
		var answers []float64
		answers, err = est.Answers(snap)
		if err == nil {
			err = est.VarianceStream(snap, func(i int, v float64) bool {
				werr = qw.WriteRow(transport.QueryRow{Answer: answers[i], Variance: v})
				return werr == nil
			})
		}
	default:
		var answers []float64
		answers, err = est.Answers(snap)
		for _, a := range answers {
			if err != nil || werr != nil {
				break
			}
			werr = qw.WriteRow(transport.QueryRow{Answer: a})
		}
	}
	if werr != nil {
		return werr
	}
	if err != nil {
		return err
	}
	return qw.Close()
}

// Query satisfies transport.QueryBackend: POST /query against a served
// collector answers a workload over the collector's current snapshot, with
// the service's estimator pool amortizing variance-model construction across
// queries and tenants.
func (b collectorBackend) Query(q transport.QueryRequest, w io.Writer) error {
	return answerQuery(b.pool, b.c.agg, b.c.Snap(), q, w)
}
