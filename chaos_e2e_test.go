package ldp_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	ldp "repro"
	"repro/internal/chaos"
)

// The chaos fan-in scenario: 4 shards behind fault-injecting proxies, one of
// them a separate durable OS process that is SIGKILLed mid-ingest and
// restarted from its write-ahead log. Sustained keyed ingest runs through a
// Fleet across drops, delays, connection resets, 503 bursts, and truncated
// responses; the acceptance criteria are exactly-once delivery end to end
// (the merged state is bit-identical to a reference collector fed the same
// reports), an honest degraded merge while the killed shard is down
// (coverage 3/4), and a final estimate inside the repo's 6σ statistical
// envelopes.
const (
	chaosDomain = 32
	chaosUsers  = 20000
	chaosBatch  = 125
	chaosEps    = 1.0
)

// TestChaosShardProcess is not a test in the normal run: it is the shard
// subprocess body, re-executed from the test binary with LDP_CHAOS_SHARD=1.
// It serves a durable OUE collector on a loopback port, publishes the
// address, and runs until killed — SIGKILL included; recovery on the next
// start comes from the write-ahead log alone.
func TestChaosShardProcess(t *testing.T) {
	if os.Getenv("LDP_CHAOS_SHARD") != "1" {
		t.Skip("subprocess body; driven by TestChaosFanInUnderFailure")
	}
	o, err := ldp.OracleByName("OUE", chaosDomain, chaosEps)
	if err != nil {
		t.Fatal(err)
	}
	w := ldp.Histogram(chaosDomain)
	col, err := ldp.NewCollector(o, w, 0, ldp.WithDurability(os.Getenv("LDP_CHAOS_DATA_DIR")))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(o))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically so the parent never reads a torn write.
	addrFile := os.Getenv("LDP_CHAOS_ADDR_FILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	// Serve until the parent SIGKILLs us. There is deliberately no shutdown
	// path: the whole point is dying without one.
	_ = http.Serve(ln, svc.Handler())
}

// startShardProcess re-execs the test binary as a durable shard over
// dataDir and returns its base URL and process handle.
func startShardProcess(t *testing.T, dataDir string) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	cmd := exec.Command(exe, "-test.run=^TestChaosShardProcess$")
	cmd.Env = append(os.Environ(),
		"LDP_CHAOS_SHARD=1",
		"LDP_CHAOS_DATA_DIR="+dataDir,
		"LDP_CHAOS_ADDR_FILE="+addrFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_ = cmd.Wait() // reap; error is expected after a kill
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + string(b), cmd
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("shard subprocess never published its address")
	return "", nil
}

// dynamicProxy forwards to a retargetable backend, so the fleet keeps one
// stable endpoint for a shard whose process (and port) is replaced after a
// crash. While the backend is down, requests fail with a retryable 502.
type dynamicProxy struct {
	mu     sync.Mutex
	target *url.URL
	rp     *httputil.ReverseProxy
}

func newDynamicProxy(t *testing.T, rawURL string) *dynamicProxy {
	t.Helper()
	d := &dynamicProxy{}
	d.retarget(t, rawURL)
	d.rp = &httputil.ReverseProxy{
		Director: func(req *http.Request) {
			d.mu.Lock()
			tgt := d.target
			d.mu.Unlock()
			req.URL.Scheme = tgt.Scheme
			req.URL.Host = tgt.Host
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			w.WriteHeader(http.StatusBadGateway)
		},
		ErrorLog: nil,
	}
	return d
}

func (d *dynamicProxy) retarget(t *testing.T, rawURL string) {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	d.target = u
	d.mu.Unlock()
}

func (d *dynamicProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { d.rp.ServeHTTP(w, r) }

func TestChaosFanInUnderFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos scenario")
	}
	o, err := ldp.OracleByName("OUE", chaosDomain, chaosEps)
	if err != nil {
		t.Fatal(err)
	}
	w := ldp.Histogram(chaosDomain)

	// Ground truth and the full randomized report stream, fixed seeds.
	x := make([]float64, chaosDomain)
	rng := rand.New(rand.NewSource(42))
	client, err := ldp.NewClient(o)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]ldp.Report, chaosUsers)
	for i := range reports {
		v := rng.Intn(chaosDomain)
		x[v]++
		if reports[i], err = client.Randomize(v, rng); err != nil {
			t.Fatal(err)
		}
	}

	// Shard 0: a separate durable process behind a retargetable proxy —
	// the one that gets SIGKILLed and recovered. Shards 1–3: in-process.
	dataDir := t.TempDir()
	addr0, proc := startShardProcess(t, dataDir)
	dyn := newDynamicProxy(t, addr0)
	plan := chaos.Plan{
		DropBefore:  0.02, // connection reset before the backend sees the request
		DropAfter:   0.02, // absorbed, response lost — the ambiguous failure
		Truncate:    0.02, // mid-frame response kill
		Unavailable: 0.03, // 503 bursts
		BurstLen:    2,
		Delay:       0.05,
		DelayFor:    time.Millisecond,
	}
	proxies := make([]*chaos.Proxy, 4)
	endpoints := make([]string, 4)
	proxies[0] = chaos.New(dyn, plan, 101)
	hs0 := httptest.NewServer(proxies[0])
	t.Cleanup(hs0.Close)
	endpoints[0] = hs0.URL
	inProc := make([]*fleetShard, 0, 3)
	for i := 1; i < 4; i++ {
		sh := newFleetShard(t, o, w)
		inProc = append(inProc, sh)
		proxies[i] = chaos.New(sh.svc.Handler(), plan, uint64(100+i))
		hs := httptest.NewServer(proxies[i])
		t.Cleanup(hs.Close)
		endpoints[i] = hs.URL
	}

	fleet, err := ldp.NewFleet(o, w,
		ldp.WithFleetRetryPolicy(ldp.RetryPolicy{
			MaxAttempts:       8,
			InitialBackoff:    time.Millisecond,
			MaxBackoff:        20 * time.Millisecond,
			Multiplier:        2,
			Jitter:            0.5,
			PerAttemptTimeout: 10 * time.Second,
		}),
		ldp.WithFleetRemoteOptions(ldp.WithRemoteBatch(chaosBatch)),
		ldp.WithFleetUnhealthyAfter(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, ep := range endpoints {
		if err := fleet.Register(ctx, ep); err != nil {
			t.Fatalf("register %s: %v", ep, err)
		}
	}
	waitFleet(t, "all 4 shards routable", func() bool {
		fleet.Probe(ctx)
		return fleet.ReadyCount() == 4
	})

	// Phase 1: sustained keyed ingest through the chaos. A batch whose
	// retries exhaust stays queued against its shard — nothing is dropped.
	ingest := func(lo, hi int) {
		for i := lo; i < hi; i += chaosBatch {
			end := i + chaosBatch
			if end > hi {
				end = hi
			}
			_ = fleet.IngestBatch(ctx, reports[i:end]) // failures stay queued; FlushAll settles them
			if (i/chaosBatch)%8 == 7 {
				fleet.Probe(ctx)
			}
		}
	}
	ingest(0, 12000)

	// Phase 2: SIGKILL the durable shard mid-stream and keep ingesting.
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = proc.Wait()
	ingest(12000, 16000)

	// The degraded merge: with the killed shard unreachable (and never yet
	// snapshotted, so there is no stale state to fall back on), the merge
	// still answers and says exactly what it covers: 3 of 4 shards.
	fleet.Probe(ctx)
	fleet.Probe(ctx)
	_, cov, err := fleet.Snap(ctx)
	if err != nil {
		t.Fatalf("degraded snap with 1 shard down: %v", err)
	}
	if cov.Merged() != 3 || cov.Total != 4 {
		t.Fatalf("degraded coverage = %s, want 3/4", cov)
	}
	if !strings.HasPrefix(cov.String(), "3/4 shards") {
		t.Fatalf("coverage string = %q", cov.String())
	}

	// Phase 3: crash-recover-rejoin. The restarted process recovers count,
	// epoch, and the idempotency keys of every acknowledged batch from its
	// WAL, so stranded retries replay instead of double-absorbing.
	addr0again, _ := startShardProcess(t, dataDir)
	dyn.retarget(t, addr0again)
	waitFleet(t, "killed shard to rejoin after recovery", func() bool {
		fleet.Probe(ctx)
		for _, m := range fleet.Members() {
			if m.Endpoint == endpoints[0] {
				return m.Ready
			}
		}
		return false
	})
	ingest(16000, chaosUsers)

	// Phase 4: settle. Chaos off, then flush until every queue drains —
	// including batches stranded on the killed shard across its restart.
	for _, p := range proxies {
		p.SetPlan(chaos.Plan{})
	}
	var flushErr error
	for attempt := 0; attempt < 30; attempt++ {
		if flushErr = fleet.FlushAll(ctx); flushErr == nil {
			break
		}
		fleet.Probe(ctx)
		time.Sleep(10 * time.Millisecond)
	}
	if flushErr != nil {
		t.Fatalf("queues never drained: %v", flushErr)
	}

	// Acceptance: the chaos actually fired — every proxy injected faults,
	// and every fault category fired somewhere in the fleet.
	var agg chaos.Stats
	for i, p := range proxies {
		st := p.Stats()
		if st.Requests == 0 || st.Requests == st.Forwarded {
			t.Fatalf("proxy %d injected no chaos at all: %+v", i, st)
		}
		agg.DropsBefore += st.DropsBefore
		agg.DropsAfter += st.DropsAfter
		agg.Truncated += st.Truncated
		agg.Unavailable += st.Unavailable
		agg.Delayed += st.Delayed
	}
	if agg.DropsBefore == 0 || agg.DropsAfter == 0 || agg.Truncated == 0 || agg.Unavailable == 0 || agg.Delayed == 0 {
		t.Fatalf("some fault category never fired across the fleet: %+v", agg)
	}
	// ...and exactly-once held through all of it: the merged fleet state is
	// bit-identical to one reference collector fed the same 20k reports
	// (accumulators are order-independent sums, so equality is exact).
	snap, cov, err := fleet.Snap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("final coverage = %s, want 4/4 fresh", cov)
	}
	if snap.Count() != chaosUsers {
		t.Fatalf("merged count %v, want exactly %d (every acknowledged report, no duplicates)", snap.Count(), chaosUsers)
	}
	var perShard float64
	for _, sc := range cov.Shards {
		perShard += sc.Count
	}
	if perShard != chaosUsers {
		t.Fatalf("per-shard counts sum to %v, want %d", perShard, chaosUsers)
	}
	ref, err := ldp.NewServer(o, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.IngestBatch(reports); err != nil {
		t.Fatal(err)
	}
	refState, gotState := ref.Snap().State(), snap.State()
	for i := range refState {
		if gotState[i] != refState[i] {
			t.Fatalf("state[%d]: fleet %v != reference %v — reports were lost or duplicated", i, gotState[i], refState[i])
		}
	}

	// And the estimate is statistically sound: every cell inside the same
	// 6σ envelope the repo's acceptance tests use (σ² = N·VariancePerUser,
	// inflated 1.5× for occupied cells).
	est, err := ldp.NewEstimator(o, w)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := est.Answers(snap)
	if err != nil {
		t.Fatal(err)
	}
	bound := 6.0 * math.Sqrt(float64(chaosUsers)*o.VariancePerUser()*1.5)
	for v := range x {
		if d := answers[v] - x[v]; math.Abs(d) > bound {
			t.Errorf("count[%d] estimate %.1f is %.1f off the truth %.0f — outside the ±%.1f envelope", v, answers[v], d, x[v], bound)
		}
	}
	t.Logf("chaos totals: %+v / %+v / %+v / %+v", proxies[0].Stats(), proxies[1].Stats(), proxies[2].Stats(), proxies[3].Stats())
}

// waitFleet polls cond with a generous deadline.
func waitFleet(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
