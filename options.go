package ldp

import (
	"repro/internal/core"
)

// OptimizeOption configures Optimize. The zero configuration uses the paper's
// defaults: m = 4n outputs, random initialization, automatic step-size
// search, 500 iterations, uniform (worst-case-oriented) objective, no warm
// starts.
type OptimizeOption func(*optimizeSettings)

// optimizeSettings is the resolved option set Optimize runs with.
type optimizeSettings struct {
	core       core.Options
	warmStarts bool
}

// WithIterations bounds the number of projected-gradient iterations
// (default 500).
func WithIterations(iters int) OptimizeOption {
	return func(s *optimizeSettings) { s.core.Iters = iters }
}

// WithOutputs sets the strategy's output-range size m explicitly (default
// m = 4n, the paper's empirical sweet spot).
func WithOutputs(m int) OptimizeOption {
	return func(s *optimizeSettings) { s.core.Outputs = m }
}

// WithOutputFactor sets m = factor·n (ignored when WithOutputs is given).
func WithOutputFactor(factor int) OptimizeOption {
	return func(s *optimizeSettings) { s.core.OutputFactor = factor }
}

// WithStepSize fixes the gradient step size β instead of the automatic
// pilot-run search.
func WithStepSize(beta float64) OptimizeOption {
	return func(s *optimizeSettings) { s.core.StepSize = beta }
}

// WithSeed drives the random initialization (and the step-size pilot runs).
func WithSeed(seed int64) OptimizeOption {
	return func(s *optimizeSettings) { s.core.Seed = seed }
}

// WithTolerance stops early when the relative objective improvement over 25
// iterations falls below tol (default 1e-8).
func WithTolerance(tol float64) OptimizeOption {
	return func(s *optimizeSettings) { s.core.Tol = tol }
}

// WithInit seeds the optimization from an existing strategy (e.g. a baseline
// mechanism) instead of the paper's random initialization.
func WithInit(init *Strategy) OptimizeOption {
	return func(s *optimizeSettings) { s.core.Init = init }
}

// WithPrior optimizes for a known (or estimated) prior distribution over user
// types instead of the uniform average — the data-dependent variant the paper
// sketches in footnote 2. Both the strategy search and the reconstruction are
// weighted by the prior, so the mechanism concentrates its accuracy where the
// data actually lives; worst-case guarantees of the result are still reported
// exactly.
func WithPrior(prior []float64) OptimizeOption {
	return func(s *optimizeSettings) { s.core.Prior = prior }
}

// WithWarmStarts hardens the search: after the paper's random-init run the
// standard baseline strategies are considered as alternative initializations
// and the best mechanism found is returned, so the result provably dominates
// every factorization baseline in average-case variance. Costs up to 2×.
func WithWarmStarts() OptimizeOption {
	return func(s *optimizeSettings) { s.warmStarts = true }
}

// WithProgress observes (iteration, objective) pairs as the projected
// gradient descent runs — for progress bars, logging, or adaptive
// cancellation through the context.
func WithProgress(fn func(iter int, objective float64)) OptimizeOption {
	return func(s *optimizeSettings) { s.core.OnIteration = fn }
}

// withLegacyOptions seeds the settings from a pre-functional-options struct;
// it backs the deprecated Optimize* wrappers.
func withLegacyOptions(opts *OptimizeOptions) OptimizeOption {
	return func(s *optimizeSettings) {
		if opts != nil {
			prior, ctx := s.core.Prior, s.core.Ctx
			s.core = *opts
			if s.core.Prior == nil {
				s.core.Prior = prior
			}
			if s.core.Ctx == nil {
				s.core.Ctx = ctx
			}
		}
	}
}
