// Statistical acceptance tests: every Randomizer/Aggregator pair runs the
// complete protocol end-to-end at a fixed seed over N = 50,000 reports, and
// the resulting frequency estimates must land inside an error envelope
// precomputed from the mechanism's closed-form variance (Theorem 3.4 for
// strategy mechanisms, the Wang et al. constants for the oracles). The
// envelopes are wide enough (6σ per cell, 4× the expected total squared
// error) that seed-to-seed noise can never trip them, but a mechanism
// regression — a broken estimator constant, a hash family without the
// collision property, a biased randomizer — shifts estimates by O(N) and
// fails loudly instead of silently degrading accuracy.
package ldp_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
)

const (
	acceptN     = 32    // domain size
	acceptUsers = 50000 // reports per mechanism
	acceptSeed  = 41
	// Cell envelopes are zSigma standard deviations of the cell estimator;
	// varSlack absorbs the frequency-dependent part of the per-cell variance
	// that the f→0 closed forms drop (for OUE the true-cell term p(1−p)
	// exceeds q(1−q) by ≤ 1.3× at ε=1).
	zSigma   = 6.0
	varSlack = 1.5
	// The observed total squared error may exceed its expectation by at most
	// tseSlack — a Markov-style margin; real regressions overshoot it by
	// orders of magnitude.
	tseSlack = 4.0
)

// acceptData is the fixed skewed histogram every mechanism is measured on:
// half the mass on type 0, then geometrically decaying, remainder on the
// last type — integer counts summing exactly to acceptUsers.
func acceptData() []float64 {
	x := make([]float64, acceptN)
	remaining := float64(acceptUsers)
	share := 0.5
	for v := 0; v < acceptN-1; v++ {
		c := math.Floor(float64(acceptUsers) * share)
		if c > remaining {
			c = remaining
		}
		x[v] = c
		remaining -= c
		share /= 2
		if share < 1.0/float64(acceptUsers) {
			break
		}
	}
	x[acceptN-1] += remaining
	return x
}

// acceptCase is one mechanism with its theory-derived envelope.
type acceptCase struct {
	name string
	rz   ldp.Randomizer
	agg  ldp.Aggregator
	// expectedTSE is the closed-form expected total squared error of the
	// histogram estimate over acceptData.
	expectedTSE float64
	// cellSigma is the standard deviation bound of one cell's estimator.
	cellSigma float64
}

func acceptCases(t *testing.T, x []float64) []acceptCase {
	t.Helper()
	var cases []acceptCase

	// Strategy-matrix mechanism: randomized response at ε=1 (deterministic
	// fixture; an optimized matrix exercises the identical aggregation
	// path). Theorem 3.4 gives its exact expected error on x.
	s := benchfix.RRStrategy(acceptN, 1.0)
	rz, err := ldp.NewRandomizer(s)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ldp.NewAggregator(s)
	if err != nil {
		t.Fatal(err)
	}
	w := ldp.Histogram(acceptN)
	vp, err := s.Variances(w.Gram(), w.Queries())
	if err != nil {
		t.Fatal(err)
	}
	tse := vp.OnData(x)
	cases = append(cases, acceptCase{
		name: "strategy-rr", rz: rz, agg: agg,
		expectedTSE: tse,
		// One cell's variance is at most the total over all cells.
		cellSigma: math.Sqrt(tse),
	})

	// Frequency oracles: per-cell variance N·VariancePerUser (f→0 form,
	// inflated by varSlack for occupied cells), total n times that.
	for _, name := range []string{"OUE", "OLH", "RAPPOR"} {
		o, err := ldp.OracleByName(name, acceptN, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		perCell := float64(acceptUsers) * o.VariancePerUser() * varSlack
		cases = append(cases, acceptCase{
			name: name, rz: o, agg: o,
			expectedTSE: float64(acceptN) * perCell,
			cellSigma:   math.Sqrt(perCell),
		})
	}
	return cases
}

func TestStatisticalAcceptance(t *testing.T) {
	x := acceptData()
	var total float64
	for _, v := range x {
		total += v
	}
	if total != acceptUsers {
		t.Fatalf("fixture mass %v, want %d", total, acceptUsers)
	}
	w := ldp.Histogram(acceptN)
	for _, c := range acceptCases(t, x) {
		t.Run(c.name, func(t *testing.T) {
			est, err := ldp.SimulateProtocol(c.rz, c.agg, w, x, acceptSeed)
			if err != nil {
				t.Fatal(err)
			}
			cellBound := zSigma * c.cellSigma
			var tse, sum float64
			for v := range x {
				d := est[v] - x[v]
				tse += d * d
				sum += est[v]
				if math.Abs(d) > cellBound {
					t.Errorf("count[%d] estimate %.1f is %.1f off the truth %.0f — outside the %.1f envelope",
						v, est[v], d, x[v], cellBound)
				}
			}
			if tse > tseSlack*c.expectedTSE {
				t.Errorf("total squared error %.0f exceeds %.0f (%.0f expected × %.1f slack)",
					tse, tseSlack*c.expectedTSE, c.expectedTSE, tseSlack)
			}
			// The estimated total mass must track N as well: a bias that
			// cancels across cells in TSE still shows up here.
			if math.Abs(sum-acceptUsers) > zSigma*math.Sqrt(float64(acceptN))*c.cellSigma {
				t.Errorf("estimated total %.1f drifts from the true %d users", sum, acceptUsers)
			}
			t.Logf("%s: TSE %.0f (expected %.0f), max cell envelope ±%.1f", c.name, tse, c.expectedTSE, cellBound)
		})
	}
}

// TestAcceptanceEnvelopeIsSharp guards the guard: the envelope must be tight
// enough that a genuinely broken mechanism cannot hide inside it. A
// deliberately mis-calibrated OUE estimator (the pre-fix q of a neighboring
// ε) must land far outside the envelope used above.
func TestAcceptanceEnvelopeIsSharp(t *testing.T) {
	o, err := ldp.NewOUE(acceptN, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate under a mechanism whose channel constants are wrong by one
	// ε step — the kind of silent miscalibration the acceptance test exists
	// to catch.
	wrong, err := ldp.NewOUE(acceptN, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	x := acceptData()
	est, err := ldp.SimulateProtocol(o, wrong, ldp.Histogram(acceptN), x, acceptSeed)
	if err != nil {
		t.Fatal(err)
	}
	perCell := float64(acceptUsers) * o.VariancePerUser() * varSlack
	cellBound := zSigma * math.Sqrt(perCell)
	worst := 0.0
	for v := range x {
		if d := math.Abs(est[v] - x[v]); d > worst {
			worst = d
		}
	}
	if worst < 2*cellBound {
		t.Fatalf("mis-calibrated aggregator deviates only %.1f — the %.1f envelope could not catch it", worst, cellBound)
	}
	t.Logf("mis-calibration deviates %.1f vs envelope %.1f", worst, cellBound)
}

// The fuzz targets double as regression tests for the decoder-hardening
// fixes; this test pins the specific crafted inputs they surfaced so the
// bugs stay fixed even when fuzzing is skipped.
func TestWireRejectsCraftedArtifacts(t *testing.T) {
	for _, tc := range []struct {
		name string
		eps  float64
	}{{"nan", math.NaN()}, {"inf", math.Inf(1)}, {"neg", -1}, {"zero", 0}, {"huge", 1e8}} {
		t.Run("oracle-eps-"+tc.name, func(t *testing.T) {
			if _, err := ldp.OracleByName("OLH", 8, tc.eps); err == nil {
				t.Fatalf("OLH accepted ε=%v", tc.eps)
			}
			if _, err := ldp.OracleByName("OUE", 8, tc.eps); err == nil {
				t.Fatalf("OUE accepted ε=%v", tc.eps)
			}
		})
	}
	for _, tc := range []struct{ rows, cols int }{
		{1 << 32, 1 << 32}, // product overflows to 0 on 64-bit int
		{-4, -4},           // negative but positive product
		{1 << 30, 2},       // over the element cap
	} {
		t.Run(fmt.Sprintf("strategy-dims-%dx%d", tc.rows, tc.cols), func(t *testing.T) {
			if err := encodeStrategyDims(t, tc.rows, tc.cols); err == nil {
				t.Fatalf("loader accepted %dx%d", tc.rows, tc.cols)
			}
		})
	}
}

// encodeStrategyDims hand-crafts a wire file with hostile dimensions (and no
// matrix data) and reports what LoadStrategy makes of it. Before the bounds
// checks, 2³²×2³² wrapped to a zero product, matched the empty Data slice,
// and panicked deep inside matrix construction.
func encodeStrategyDims(t *testing.T, rows, cols int) error {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(struct {
		Magic   string
		Version int
		Kind    string
	}{"LDPWIRE", 1, "strategy"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(struct {
		Rows, Cols int
		Eps        float64
		Data       []float64
	}{Rows: rows, Cols: cols, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := ldp.LoadStrategy(&buf)
	return err
}
