package ldp

import "repro/internal/freqoracle"

// FrequencyOracle is a practical histogram-estimation protocol (unary
// encoding or local hashing) that scales to domains far beyond what an
// explicit strategy matrix allows. These are the mechanisms of Wang et al.
// the paper cites as histogram state of the art; they estimate the full
// histogram, whereas Optimize adapts to arbitrary workloads.
//
// Every oracle implements both Randomizer and Aggregator, so it plugs
// directly into the same streaming Client/Server/Collector pipeline (and
// SimulateProtocol) as optimized strategies — no separate batch path.
type FrequencyOracle = freqoracle.Oracle

// NewOUE returns the Optimized Unary Encoding frequency oracle.
func NewOUE(n int, eps float64) (FrequencyOracle, error) { return freqoracle.NewOUE(n, eps) }

// NewOLH returns the Optimized Local Hashing frequency oracle
// (O(log g)-bit reports, any domain size).
func NewOLH(n int, eps float64) (FrequencyOracle, error) { return freqoracle.NewOLH(n, eps) }

// NewRAPPOROracle returns the basic symmetric RAPPOR frequency oracle without
// materializing its 2^n-row strategy matrix.
func NewRAPPOROracle(n int, eps float64) (FrequencyOracle, error) {
	return freqoracle.NewRAPPOR(n, eps)
}

// OracleByName constructs the named frequency oracle ("OUE", "OLH",
// "RAPPOR") — the inverse of FrequencyOracle.Name, used by tooling that
// selects mechanisms from configuration.
func OracleByName(name string, n int, eps float64) (FrequencyOracle, error) {
	return freqoracle.ByName(name, n, eps)
}

// RunFrequencyOracle executes a full oracle protocol on an integer data
// vector and returns the estimated counts.
//
// Deprecated: oracles speak the streaming protocol; use SimulateProtocol(o,
// o, Histogram(n), x, seed) or the Client/Collector pipeline directly.
func RunFrequencyOracle(o FrequencyOracle, x []float64, seed int64) ([]float64, error) {
	return freqoracle.Run(o, x, seed)
}
