package ldp

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/workload"
)

// EstimatorPool is the query-engine root: it caches built Estimators keyed by
// (mechanism identity, workload digest) and memoizes the optimizer's strategy
// output keyed by (workload digest, ε), so many tenants asking different
// questions of the same privatized population share every expensive artifact.
// With a cache directory configured, memoized strategies are persisted via
// the SaveStrategy wire format and verified by digest on load — a restart or
// a second process never re-pays Algorithm 1 for a workload it has already
// optimized.
//
// Both caches are singleflight: N goroutines resolving the same key
// concurrently trigger exactly one build (one optimizer run, one estimator
// construction); the rest wait and share the result. A pooled Estimator is
// the same immutable, concurrency-safe value NewEstimator returns, so answers
// through the pool are byte-identical to answers through fresh estimators.
//
// An EstimatorPool is safe for concurrent use.
type EstimatorPool struct {
	dir        string // strategy cache directory; "" keeps the cache in memory only
	maxEntries int    // per-cache LRU bound; 0 = unbounded
	gcBudget   int64  // disk-cache byte budget; 0 = unbounded

	mu         sync.Mutex
	clock      uint64 // LRU clock: bumped on every cache touch under mu
	estimators map[string]*estimatorCall
	strategies map[string]*strategyCall
	// answers caches AnswerBatch results per mechanism identity, valid for
	// exactly one observed snapshot: an advance of the snapshot (epoch, count,
	// state fingerprint) drops the identity's entries wholesale.
	answers map[string]*answerHolder
	// digests memoizes WorkloadDigest per workload instance: the digest hashes
	// the materialized W (megabytes for wide workloads), far too expensive to
	// recompute on every pool lookup of a long-lived workload value.
	digests map[Workload]string
	// idkeys likewise memoizes identityKey per aggregator instance —
	// MechanismInfoOf re-hashes the strategy matrix on every call.
	idkeys map[Aggregator]string

	stats poolCounters
}

// estimatorCall is one in-flight or completed estimator build; waiters block
// on done. used is the LRU timestamp (pool clock, written under the pool
// lock); settled flips once the build finished, gating eviction — an
// in-flight singleflight entry is never evicted out from under its waiters.
type estimatorCall struct {
	done    chan struct{}
	est     *Estimator
	err     error
	used    uint64
	settled bool
}

// strategyCall is one in-flight or completed strategy resolution.
type strategyCall struct {
	done    chan struct{}
	s       *Strategy
	err     error
	used    uint64
	settled bool
}

// answerHolder is one mechanism identity's cached batch answers, pinned to a
// single snapshot. entries are keyed by (workload digest, variance flag).
type answerHolder struct {
	epoch     uint64
	countBits uint64
	stateHash uint64
	entries   map[string]cachedAnswer
}

// cachedAnswer holds the immutable master copies; hits hand out fresh
// slices so callers own their results, exactly as uncached answers do.
type cachedAnswer struct {
	answers  []float64
	variance []float64
}

// poolCounters backs PoolStats with atomics so the hot path never takes the
// pool lock just to count.
type poolCounters struct {
	estimatorBuilds     atomic.Uint64
	estimatorHits       atomic.Uint64
	optimizerRuns       atomic.Uint64
	strategyMemHits     atomic.Uint64
	strategyDiskHits    atomic.Uint64
	sharedRowHits       atomic.Uint64
	estimatorEvictions  atomic.Uint64
	strategyEvictions   atomic.Uint64
	diskGCRemoved       atomic.Uint64
	answerHits          atomic.Uint64
	answerInvalidations atomic.Uint64
}

// PoolStats is a point-in-time snapshot of the pool's cache behavior —
// what a cold-vs-warm assertion or a capacity dashboard reads.
type PoolStats struct {
	// EstimatorBuilds and EstimatorHits count Estimator resolutions that
	// built fresh vs. returned a cached instance.
	EstimatorBuilds uint64
	EstimatorHits   uint64
	// OptimizerRuns counts actual Algorithm 1/2 executions; StrategyMemHits
	// and StrategyDiskHits count resolutions served from the in-memory map
	// and the persisted cache directory instead.
	OptimizerRuns    uint64
	StrategyMemHits  uint64
	StrategyDiskHits uint64
	// SharedRowHits counts batch variance rows served from another query's
	// identical W·B row instead of recomputed.
	SharedRowHits uint64
	// EstimatorEvictions and StrategyEvictions count completed entries the
	// WithPoolMaxEntries LRU bound pushed out.
	EstimatorEvictions uint64
	StrategyEvictions  uint64
	// DiskGCRemoved counts persisted strategy entries the cache-directory GC
	// deleted to stay inside the WithPoolCacheGCBudget byte budget.
	DiskGCRemoved uint64
	// AnswerHits counts AnswerBatch workloads served from the snapshot-pinned
	// answer cache; AnswerInvalidations counts identities whose cached answers
	// were dropped because the observed snapshot advanced.
	AnswerHits          uint64
	AnswerInvalidations uint64
}

// PoolOption configures an EstimatorPool.
type PoolOption func(*EstimatorPool)

// WithPoolCacheDir persists memoized strategies to dir (created on first
// write) via the SaveStrategy wire format. Entries are named by workload
// digest, ε bits, and strategy digest; loads verify the strategy digest
// against the recomputed one, so a corrupt or tampered entry is ignored (and
// re-optimized) instead of trusted.
func WithPoolCacheDir(dir string) PoolOption {
	return func(p *EstimatorPool) { p.dir = dir }
}

// WithPoolMaxEntries bounds the estimator and strategy caches at n completed
// entries each, evicting least-recently-used entries as new keys arrive. An
// in-flight singleflight build is never evicted (its waiters hold the entry);
// an evicted key simply rebuilds — and singleflights again — on next use.
// n <= 0 leaves the caches unbounded.
func WithPoolMaxEntries(n int) PoolOption {
	return func(p *EstimatorPool) { p.maxEntries = n }
}

// WithPoolCacheGCBudget bounds the strategy cache directory at roughly budget
// bytes: after each persist, the oldest entries (by modification time) are
// deleted until the directory fits. The newest entry always survives, even
// when it alone exceeds the budget — GC protects the disk, never correctness.
// budget <= 0 leaves the directory unbounded.
func WithPoolCacheGCBudget(budget int64) PoolOption {
	return func(p *EstimatorPool) { p.gcBudget = budget }
}

// NewEstimatorPool returns an empty pool.
func NewEstimatorPool(opts ...PoolOption) *EstimatorPool {
	p := &EstimatorPool{
		estimators: make(map[string]*estimatorCall),
		strategies: make(map[string]*strategyCall),
		answers:    make(map[string]*answerHolder),
		digests:    make(map[Workload]string),
		idkeys:     make(map[Aggregator]string),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// enableMetrics exposes the pool's cache counters as scrape-time counter
// families on reg — the same atomics Stats() snapshots, renamed into the
// metric namespace, so a dashboard sees cold-vs-warm cache behavior without
// new plumbing on the resolve paths.
func (p *EstimatorPool) enableMetrics(reg *obs.Registry) {
	for _, m := range []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"ldp_pool_estimator_builds_total", "Estimator resolutions that built a fresh instance.", &p.stats.estimatorBuilds},
		{"ldp_pool_estimator_hits_total", "Estimator resolutions served from the cache.", &p.stats.estimatorHits},
		{"ldp_pool_optimizer_runs_total", "Strategy optimizer (Algorithm 1/2) executions.", &p.stats.optimizerRuns},
		{"ldp_pool_strategy_mem_hits_total", "Strategy resolutions served from the in-memory cache.", &p.stats.strategyMemHits},
		{"ldp_pool_strategy_disk_hits_total", "Strategy resolutions served from the persisted cache directory.", &p.stats.strategyDiskHits},
		{"ldp_pool_shared_row_hits_total", "Batch variance rows served from another query's identical row.", &p.stats.sharedRowHits},
		{"ldp_pool_answer_hits_total", "Workloads answered from the snapshot-pinned answer cache.", &p.stats.answerHits},
		{"ldp_pool_answer_invalidations_total", "Cached answer sets dropped because the observed snapshot advanced.", &p.stats.answerInvalidations},
	} {
		v := m.v
		reg.CounterFunc(m.name, m.help, func() float64 { return float64(v.Load()) })
	}
}

// Stats returns a snapshot of the pool's cache counters.
func (p *EstimatorPool) Stats() PoolStats {
	return PoolStats{
		EstimatorBuilds:     p.stats.estimatorBuilds.Load(),
		EstimatorHits:       p.stats.estimatorHits.Load(),
		OptimizerRuns:       p.stats.optimizerRuns.Load(),
		StrategyMemHits:     p.stats.strategyMemHits.Load(),
		StrategyDiskHits:    p.stats.strategyDiskHits.Load(),
		SharedRowHits:       p.stats.sharedRowHits.Load(),
		EstimatorEvictions:  p.stats.estimatorEvictions.Load(),
		StrategyEvictions:   p.stats.strategyEvictions.Load(),
		DiskGCRemoved:       p.stats.diskGCRemoved.Load(),
		AnswerHits:          p.stats.answerHits.Load(),
		AnswerInvalidations: p.stats.answerInvalidations.Load(),
	}
}

// identityKey renders a mechanism identity canonically: every field that
// distinguishes two mechanisms, with ε by exact bits.
func identityKey(info MechanismInfo) string {
	return fmt.Sprintf("%s|%d|%016x|%s", info.Mechanism, info.Domain,
		math.Float64bits(info.Epsilon), info.Digest)
}

// workloadDigest is WorkloadDigest memoized per workload instance. A memo
// miss computes outside the lock (two racers may both compute — the digest is
// deterministic, so either result is correct). Workload implementations with
// a non-comparable dynamic type skip the memo rather than panic on insert;
// every built-in family is a pointer and memoizes fine.
func (p *EstimatorPool) workloadDigest(w Workload) string {
	comparable := reflect.TypeOf(w).Comparable()
	if comparable {
		p.mu.Lock()
		d, ok := p.digests[w]
		p.mu.Unlock()
		if ok {
			return d
		}
	}
	d := WorkloadDigest(w)
	if comparable {
		p.mu.Lock()
		p.digests[w] = d
		p.mu.Unlock()
	}
	return d
}

// identityKeyOf is identityKey(MechanismInfoOf(agg)) memoized per aggregator
// instance, under the same comparable-type guard as workloadDigest: the
// mechanism info hashes the strategy matrix, which is stable for the life of
// an aggregator but expensive to recompute per pool lookup.
func (p *EstimatorPool) identityKeyOf(agg Aggregator) string {
	comparable := reflect.TypeOf(agg).Comparable()
	if comparable {
		p.mu.Lock()
		k, ok := p.idkeys[agg]
		p.mu.Unlock()
		if ok {
			return k
		}
	}
	k := identityKey(MechanismInfoOf(agg))
	if comparable {
		p.mu.Lock()
		p.idkeys[agg] = k
		p.mu.Unlock()
	}
	return k
}

// Estimator returns the pooled estimator for (agg, w), building it at most
// once per (mechanism identity, workload digest) key even under concurrent
// resolvers. The returned Estimator is shared: immutable and safe for
// concurrent use, with its lazily-built variance model built once for every
// caller.
func (p *EstimatorPool) Estimator(agg Aggregator, w Workload) (*Estimator, error) {
	if agg == nil {
		return nil, fmt.Errorf("ldp: pool: nil aggregator")
	}
	key := p.identityKeyOf(agg) + "|" + p.workloadDigest(w)
	p.mu.Lock()
	if c, ok := p.estimators[key]; ok {
		p.clock++
		c.used = p.clock
		p.mu.Unlock()
		<-c.done
		if c.err == nil {
			p.stats.estimatorHits.Add(1)
		}
		return c.est, c.err
	}
	c := &estimatorCall{done: make(chan struct{})}
	p.clock++
	c.used = p.clock
	p.estimators[key] = c
	p.evictEstimatorsLocked()
	p.mu.Unlock()

	est, err := NewEstimator(agg, w)
	p.mu.Lock()
	c.est, c.err = est, err
	c.settled = true
	if err != nil {
		// A failed build must not poison the key: drop it so a later caller
		// (perhaps with a corrected workload) retries. Only remove our own
		// entry — an eviction may already have replaced it.
		if cur, ok := p.estimators[key]; ok && cur == c {
			delete(p.estimators, key)
		}
	}
	p.mu.Unlock()
	if err == nil {
		p.stats.estimatorBuilds.Add(1)
	}
	close(c.done)
	return c.est, c.err
}

// evictEstimatorsLocked enforces the LRU bound; caller holds mu. Only settled
// entries are candidates — an in-flight build has waiters parked on it.
func (p *EstimatorPool) evictEstimatorsLocked() {
	if p.maxEntries <= 0 {
		return
	}
	for len(p.estimators) > p.maxEntries {
		victim := ""
		var oldest uint64
		for k, c := range p.estimators {
			if c.settled && (victim == "" || c.used < oldest) {
				victim, oldest = k, c.used
			}
		}
		if victim == "" {
			return // everything in flight; bound is best-effort
		}
		delete(p.estimators, victim)
		p.stats.estimatorEvictions.Add(1)
	}
}

// evictStrategiesLocked is evictEstimatorsLocked for the strategy cache.
func (p *EstimatorPool) evictStrategiesLocked() {
	if p.maxEntries <= 0 {
		return
	}
	for len(p.strategies) > p.maxEntries {
		victim := ""
		var oldest uint64
		for k, c := range p.strategies {
			if c.settled && (victim == "" || c.used < oldest) {
				victim, oldest = k, c.used
			}
		}
		if victim == "" {
			return
		}
		delete(p.strategies, victim)
		p.stats.strategyEvictions.Add(1)
	}
}

// Strategy returns the optimized strategy for (w, eps), running the
// optimizer at most once per (workload digest, ε) key: concurrent resolvers
// singleflight, repeat callers hit the in-memory memo, and with a cache
// directory a restart (or another process sharing the directory) loads the
// persisted wire entry — digest-verified — instead of re-running Algorithm 1.
// opts configure the optimizer exactly as Optimize does; they only apply
// when the optimizer actually runs, so callers sharing a pool should share
// optimizer settings too.
func (p *EstimatorPool) Strategy(ctx context.Context, w Workload, eps float64, opts ...OptimizeOption) (*Strategy, error) {
	wd := p.workloadDigest(w)
	key := fmt.Sprintf("%s|%016x", wd, math.Float64bits(eps))
	p.mu.Lock()
	if c, ok := p.strategies[key]; ok {
		p.clock++
		c.used = p.clock
		p.mu.Unlock()
		<-c.done
		if c.err == nil {
			p.stats.strategyMemHits.Add(1)
		}
		return c.s, c.err
	}
	c := &strategyCall{done: make(chan struct{})}
	p.clock++
	c.used = p.clock
	p.strategies[key] = c
	p.evictStrategiesLocked()
	p.mu.Unlock()

	s, err := p.resolveStrategy(ctx, w, eps, wd, opts)
	p.mu.Lock()
	c.s, c.err = s, err
	c.settled = true
	if err != nil {
		if cur, ok := p.strategies[key]; ok && cur == c {
			delete(p.strategies, key)
		}
	}
	p.mu.Unlock()
	close(c.done)
	return c.s, c.err
}

// resolveStrategy is the singleflight leader's path: disk, then optimizer
// (persisting the result for the next process).
func (p *EstimatorPool) resolveStrategy(ctx context.Context, w Workload, eps float64, wd string, opts []OptimizeOption) (*Strategy, error) {
	if s := p.loadCachedStrategy(wd, eps, w.Domain()); s != nil {
		p.stats.strategyDiskHits.Add(1)
		return s, nil
	}
	// Cross-process singleflight: the in-memory map serializes goroutines of
	// one process, but two cold processes sharing the cache directory would
	// both reach here and run Algorithm 1 twice. A per-key flock in the cache
	// directory serializes them; the one that waited finds the winner's entry
	// on the re-check below and loads it instead of re-optimizing. A failed
	// lock (exotic filesystem, permissions) degrades to the duplicated work —
	// both results are identical and the persist is atomic, so the cache never
	// corrupts.
	if unlock, err := p.lockCacheEntry(wd, eps); err == nil {
		defer unlock()
		if s := p.loadCachedStrategy(wd, eps, w.Domain()); s != nil {
			p.stats.strategyDiskHits.Add(1)
			return s, nil
		}
	}
	s, err := OptimizeStrategy(ctx, w, eps, opts...)
	if err != nil {
		return nil, err
	}
	p.stats.optimizerRuns.Add(1)
	if err := p.storeCachedStrategy(wd, eps, s); err != nil {
		// The strategy itself is good; a failed persist only costs the next
		// process a re-optimization.
		return s, nil
	}
	return s, nil
}

// cacheEntryPrefix names every entry for one (workload digest, ε) pair; the
// full name appends the strategy digest the load verifies against.
func cacheEntryPrefix(wd string, eps float64) string {
	return fmt.Sprintf("%s-e%016x", wd, math.Float64bits(eps))
}

// lockCacheEntry takes the cross-process lock for one (workload digest, ε)
// key: a per-key ".lock" file in the cache directory under a blocking
// exclusive flock. Keys lock independently, so two processes optimizing
// different workloads never serialize each other. Without a cache directory
// there is nothing to coordinate and the lock is a no-op.
func (p *EstimatorPool) lockCacheEntry(wd string, eps float64) (func(), error) {
	if p.dir == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return nil, err
	}
	return flockExclusive(filepath.Join(p.dir, cacheEntryPrefix(wd, eps)+".lock"))
}

// loadCachedStrategy scans the cache directory for an entry matching
// (workload digest, ε) and returns it only when it survives every check:
// LoadStrategy's full wire validation, the ε bits, the workload's domain, and
// the strategy digest recomputed over the loaded matrix matching the digest
// in the filename. Anything less is treated as a miss — a corrupt entry costs
// a re-optimization, never a wrong strategy.
func (p *EstimatorPool) loadCachedStrategy(wd string, eps float64, domain int) *Strategy {
	if p.dir == "" {
		return nil
	}
	prefix := cacheEntryPrefix(wd, eps)
	matches, err := filepath.Glob(filepath.Join(p.dir, prefix+"-*.strategy"))
	if err != nil || len(matches) == 0 {
		return nil
	}
	for _, path := range matches {
		name := filepath.Base(path)
		wantDigest := strings.TrimSuffix(strings.TrimPrefix(name, prefix+"-"), ".strategy")
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		s, err := LoadStrategy(f)
		f.Close()
		if err != nil {
			continue
		}
		if s.Domain() != domain || math.Float64bits(s.Eps) != math.Float64bits(eps) {
			continue
		}
		if StrategyDigest(s) != wantDigest {
			continue
		}
		return s
	}
	return nil
}

// storeCachedStrategy persists a freshly optimized strategy atomically
// (temp file + rename), named so a digest-verified load can find and check
// it.
func (p *EstimatorPool) storeCachedStrategy(wd string, eps float64, s *Strategy) error {
	if p.dir == "" {
		return nil
	}
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%s.strategy", cacheEntryPrefix(wd, eps), StrategyDigest(s))
	tmp, err := os.CreateTemp(p.dir, name+".tmp*")
	if err != nil {
		return err
	}
	if err := SaveStrategy(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(p.dir, name)); err != nil {
		return err
	}
	p.gcCacheDir(filepath.Join(p.dir, name))
	return nil
}

// gcCacheDir enforces the disk byte budget after a persist: oldest entries
// (by mtime) go first until the directory fits. keep — the entry just
// written — is never deleted, so GC can shrink the cache but never lose the
// strategy the current caller computed.
func (p *EstimatorPool) gcCacheDir(keep string) {
	if p.gcBudget <= 0 {
		return
	}
	matches, err := filepath.Glob(filepath.Join(p.dir, "*.strategy"))
	if err != nil {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	var total int64
	entries := make([]entry, 0, len(matches))
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		total += fi.Size()
		entries = append(entries, entry{m, fi.Size(), fi.ModTime().UnixNano()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	for _, e := range entries {
		if total <= p.gcBudget {
			return
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			p.stats.diskGCRemoved.Add(1)
		}
	}
}

// BatchAnswer is one workload's result in an AnswerBatch: the workload, its
// canonical digest (the name the query wire protocol uses), its unbiased
// answers, and — when requested — the closed-form per-query variances.
type BatchAnswer struct {
	Workload Workload
	Digest   string
	Answers  []float64
	Variance []float64
}

// batchConfig is AnswerBatch's option state.
type batchConfig struct {
	variance bool
}

// BatchOption configures AnswerBatch.
type BatchOption func(*batchConfig)

// WithBatchVariance makes AnswerBatch fill each result's Variance slice from
// the mechanism's closed-form model, sharing identical W·B rows across the
// batch's queries.
func WithBatchVariance() BatchOption {
	return func(c *batchConfig) { c.variance = true }
}

// maxSharedRows caps the batch-level row cache: past this many distinct
// workload rows the sharing stops paying for its memory and further rows are
// computed directly.
const maxSharedRows = 1 << 14

// sharedRowCache deduplicates variance computation across a batch: workload
// rows are keyed by the FNV-1a hash of their bits and verified by full
// comparison (a hash collision downgrades to a recompute, never a wrong
// answer). Rows inserted from a memoized estimator model reference that
// model's matrix directly; rows from the streaming path are copied (the
// count cap bounds that memory).
type sharedRowCache struct {
	entries map[uint64][]sharedRow
	count   int
}

type sharedRow struct {
	row []float64
	v   float64
}

func (c *sharedRowCache) get(h uint64, row []float64) (float64, bool) {
	for _, e := range c.entries[h] {
		if rowsEqual(e.row, row) {
			return e.v, true
		}
	}
	return 0, false
}

// put records row → v. The row slice is retained as-is; pass a copy when the
// backing buffer will be overwritten.
func (c *sharedRowCache) put(h uint64, row []float64, v float64) {
	if c.count >= maxSharedRows {
		return
	}
	c.entries[h] = append(c.entries[h], sharedRow{row: row, v: v})
	c.count++
}

// hashRow mixes the row's IEEE-754 bits a word at a time (FNV-style multiply
// plus a shift-xor to spread high bits). It is a cache key, not a wire format:
// collisions only cost a rowsEqual compare, so a fast 8-bytes-per-step mix
// beats byte-accurate FNV — this runs once per query row of every batch.
func hashRow(row []float64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, v := range row {
		h ^= math.Float64bits(v)
		h *= prime64
		h ^= h >> 29
	}
	return h
}

func rowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// AnswerBatch answers heterogeneous workloads over one snapshot with shared
// computation: the data estimate x̂ (the dominant B·y reconstruction) is
// computed once for the whole batch instead of once per workload, workloads
// with equal digests are answered once, and — with WithBatchVariance —
// queries sharing rows of W·B across the batch compute the row's variance
// once. Results are returned in input order; answers are byte-identical to
// each workload's own Estimator read against the same snapshot.
func (p *EstimatorPool) AnswerBatch(agg Aggregator, s Snapshot, workloads []Workload, opts ...BatchOption) ([]BatchAnswer, error) {
	var cfg batchConfig
	for _, o := range opts {
		o(&cfg)
	}
	if len(workloads) == 0 {
		return nil, nil
	}
	// Resolve every estimator first: identity and domain checks fail the
	// batch before any computation, and the pool guarantees each distinct
	// workload builds at most once.
	ests := make([]*Estimator, len(workloads))
	digests := make([]string, len(workloads))
	for i, w := range workloads {
		est, err := p.Estimator(agg, w)
		if err != nil {
			return nil, fmt.Errorf("ldp: batch workload %d (%s): %w", i, w.Name(), err)
		}
		if err := est.Check(s); err != nil {
			return nil, fmt.Errorf("ldp: batch workload %d (%s): %w", i, w.Name(), err)
		}
		ests[i] = est
		digests[i] = p.workloadDigest(w)
	}
	// The answer cache pins one snapshot per mechanism identity: a batch
	// observing a different snapshot (epoch advance, or any state change the
	// fingerprint catches) invalidates the identity's cached answers first.
	ik := p.identityKeyOf(agg)
	hkey := answerHolderKey{epoch: s.epoch, countBits: math.Float64bits(s.count), stateHash: hashRow(s.state)}
	holder := p.answerHolder(ik, hkey)

	// The shared subexpression every workload needs: x̂ once, not k times —
	// skipped when every workload in the batch is a cache hit.
	var xh []float64
	estimate := func() []float64 {
		if xh == nil {
			xh = agg.EstimateCounts(s.state, s.count)
		}
		return xh
	}

	var rowCache *sharedRowCache
	if cfg.variance {
		rowCache = &sharedRowCache{entries: make(map[uint64][]sharedRow)}
	}
	out := make([]BatchAnswer, len(workloads))
	firstByDigest := make(map[string]int, len(workloads))
	for i, w := range workloads {
		ckey := digests[i]
		if cfg.variance {
			ckey += "|v"
		}
		if ca, ok := holder.lookup(p, ckey); ok {
			out[i] = BatchAnswer{Workload: w, Digest: digests[i],
				Answers: append([]float64(nil), ca.answers...)}
			if ca.variance != nil {
				out[i].Variance = append([]float64(nil), ca.variance...)
			}
			p.stats.answerHits.Add(1)
			if _, seen := firstByDigest[digests[i]]; !seen {
				firstByDigest[digests[i]] = i
			}
			continue
		}
		if j, ok := firstByDigest[digests[i]]; ok {
			// Same digest, same workload: share the computation, copy the
			// slices so callers own their results independently.
			out[i] = BatchAnswer{Workload: w, Digest: digests[i],
				Answers: append([]float64(nil), out[j].Answers...)}
			if out[j].Variance != nil {
				out[i].Variance = append([]float64(nil), out[j].Variance...)
			}
			continue
		}
		firstByDigest[digests[i]] = i
		ba := BatchAnswer{Workload: w, Digest: digests[i], Answers: w.MatVec(estimate())}
		if cfg.variance {
			vars, err := p.batchVariance(ests[i], s, rowCache)
			if err != nil {
				return nil, fmt.Errorf("ldp: batch workload %d (%s): %w", i, w.Name(), err)
			}
			ba.Variance = vars
		}
		out[i] = ba
		holder.store(p, ckey, cachedAnswer{
			answers:  append([]float64(nil), ba.Answers...),
			variance: append([]float64(nil), ba.Variance...),
		})
	}
	return out, nil
}

// answerHolderKey is the snapshot fingerprint an answer cache entry is
// pinned to: the producing collector's epoch plus the exact count bits and
// an FNV fingerprint of the state, so two different snapshots that happen to
// share an epoch (distinct shards, hand-merged values) can never alias.
type answerHolderKey struct {
	epoch     uint64
	countBits uint64
	stateHash uint64
}

// answerHolder returns the identity's holder for exactly this snapshot key,
// dropping (invalidating) a holder pinned to an older snapshot.
func (p *EstimatorPool) answerHolder(ik string, k answerHolderKey) *answerHolder {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.answers[ik]
	if ok && (h.epoch != k.epoch || h.countBits != k.countBits || h.stateHash != k.stateHash) {
		ok = false
		p.stats.answerInvalidations.Add(1)
	}
	if !ok {
		h = &answerHolder{epoch: k.epoch, countBits: k.countBits, stateHash: k.stateHash,
			entries: make(map[string]cachedAnswer)}
		p.answers[ik] = h
	}
	return h
}

// lookup reads one cached answer under the pool lock.
func (h *answerHolder) lookup(p *EstimatorPool, key string) (cachedAnswer, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ca, ok := h.entries[key]
	return ca, ok
}

// store publishes one answer under the pool lock. The holder may already
// have been invalidated and replaced by a concurrent batch on a newer
// snapshot; storing into the orphaned holder is harmless — nobody can reach
// it again.
func (h *answerHolder) store(p *EstimatorPool, key string, ca cachedAnswer) {
	if ca.variance != nil && len(ca.variance) == 0 {
		ca.variance = nil // append(nil, empty...) yields nil already, but be explicit
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	h.entries[key] = ca
}

// batchVariance computes one workload's per-query variances, serving repeated
// rows from the batch's shared cache. Workloads within the materialization
// bound read the estimator's memoized model (V = W·B built once per pooled
// estimator and amortized across every later batch — the pool's second big
// shared subexpression after x̂); rows are published to the cache by reference
// into the memoized W, so later workloads repeating them skip the read.
// Workloads past the bound stream one row at a time, with cache hits saving
// the full O(n·m) row reconstruction.
func (p *EstimatorPool) batchVariance(est *Estimator, s Snapshot, cache *sharedRowCache) ([]float64, error) {
	pq := est.Workload().Queries()
	out := make([]float64, pq)
	if merr := est.prepareVariance(); merr == nil {
		if s.count <= 0 {
			return out, nil
		}
		for i := 0; i < pq; i++ {
			row := est.varW.Row(i)
			h := hashRow(row)
			if v, ok := cache.get(h, row); ok {
				out[i] = v
				p.stats.sharedRowHits.Add(1)
				continue
			}
			out[i] = est.varianceAt(i, s.state, s.count)
			// The row references the estimator's memoized W, which outlives
			// the batch — no copy needed.
			cache.put(h, row, out[i])
		}
		return out, nil
	} else if rv, err := est.newRowVariancer(); err != nil {
		return nil, err
	} else if rv == nil {
		// No per-row view either: the materialization error stands.
		return nil, merr
	} else {
		if s.count <= 0 {
			return out, nil
		}
		for i := 0; i < pq; i++ {
			rv.rows.QueryRow(i, rv.wrow)
			h := hashRow(rv.wrow)
			if v, ok := cache.get(h, rv.wrow); ok {
				out[i] = v
				p.stats.sharedRowHits.Add(1)
				continue
			}
			v := rv.varianceFromRow(s.state, s.count)
			out[i] = v
			cache.put(h, append([]float64(nil), rv.wrow...), v)
		}
		return out, nil
	}
}

// RowAccessor re-exports the per-row workload view so callers can test
// whether a custom Workload supports streaming reads.
type RowAccessor = workload.RowAccessor
