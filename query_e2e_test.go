package ldp_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	ldp "repro"
	"repro/internal/transport"
)

// One shard end to end: a framed POST /query against a CollectorService must
// stream back exactly what the estimator computes locally — answers, variances
// and CIs bit-identical — and refuse mismatched digests, unknown workloads,
// and wrong domains with a 400 before the first result byte.
func TestCollectorServiceQueryEndToEnd(t *testing.T) {
	const n, users = 16, 300
	agg, err := ldp.NewOUE(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	w := ldp.Prefix(n)
	col, err := ldp.NewCollector(agg, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ldp.NewCollectorService(col, ldp.MechanismInfoOf(agg))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(svc.Handler())
	defer hs.Close()

	rz := randomizerFor(t, agg)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < users; i++ {
		u := rng.Intn(n / 4)
		if rng.Float64() < 0.25 {
			u = rng.Intn(n)
		}
		rep, err := rz.Randomize(u, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Ingest(rep); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Snap()

	c, err := transport.NewClient(hs.URL, hs.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The query workload differs from the collector's configured one on
	// purpose: the query engine answers any workload over the snapshot.
	qw := ldp.AllRange(n)
	est, err := ldp.NewEstimator(agg, qw)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := est.Answers(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := est.Variance(snap)
	if err != nil {
		t.Fatal(err)
	}

	req := transport.QueryRequest{
		Workload: "AllRange", Domain: n, Digest: ldp.WorkloadDigest(qw),
		Level: 0.9, WantVariance: true, WantCI: true,
	}
	next := 0
	info, err := c.PostQuery(ctx, req, func(row transport.QueryRow) bool {
		if row.Index != next {
			t.Fatalf("row %d arrived at position %d", row.Index, next)
		}
		if math.Float64bits(row.Answer) != math.Float64bits(wantA[row.Index]) {
			t.Fatalf("row %d answer: served %v, local %v", row.Index, row.Answer, wantA[row.Index])
		}
		if math.Float64bits(row.Variance) != math.Float64bits(wantV[row.Index]) {
			t.Fatalf("row %d variance: served %v, local %v", row.Index, row.Variance, wantV[row.Index])
		}
		if row.Low > row.Answer || row.High < row.Answer {
			t.Fatalf("row %d CI [%v, %v] does not contain %v", row.Index, row.Low, row.High, row.Answer)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != qw.Queries() || info.TotalRows != qw.Queries() {
		t.Fatalf("streamed %d rows, want %d (info %+v)", next, qw.Queries(), info)
	}
	if info.Count != snap.Count() || info.Epoch != snap.Epoch() {
		t.Fatalf("result header %+v does not match the snapshot (count %v epoch %d)", info, snap.Count(), snap.Epoch())
	}

	// Rejections: each must be an HTTP status, not a truncated stream.
	for name, bad := range map[string]transport.QueryRequest{
		"unknownWorkload": {Workload: "NoSuchFamily"},
		"wrongDomain":     {Workload: "Prefix", Domain: n * 2},
		"digestMismatch":  {Workload: "Prefix", Digest: "0000000000000000"},
	} {
		_, err := c.PostQuery(ctx, bad, func(transport.QueryRow) bool { return true })
		var se *transport.StatusError
		if err == nil || !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %v, want a 400 StatusError", name, err)
		}
	}
}

// The router tier: POST /query against a FleetServer answers over the merged
// fleet snapshot, carries the coverage headers snapshot reads carry, and is a
// 404 until EnableQueries arms it.
func TestFleetServerQueryEndToEnd(t *testing.T) {
	const domain, total = 16, 120
	f, fs, hs, _, agg, _ := routerFixture(t, domain, 3)

	// Not enabled yet: the route exists but refuses.
	var reqBuf bytes.Buffer
	q := transport.QueryRequest{Workload: "Prefix", WantVariance: true}
	if err := transport.EncodeQueryFrame(&reqBuf, q); err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/query", "application/octet-stream", bytes.NewReader(reqBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query before EnableQueries = %d, want 404", resp.StatusCode)
	}

	// A mechanism that is not the fleet's is refused outright.
	other, err := ldp.NewOUE(domain, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.EnableQueries(other); err == nil {
		t.Fatal("EnableQueries accepted an aggregator with a different mechanism identity")
	}
	if err := fs.EnableQueries(agg); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < total; i++ {
		if _, err := f.IngestKeyed(ctx, []ldp.Report{{Index: i % domain}}, ""); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if err := f.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	merged, _, err := f.Snap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ldp.NewEstimator(agg, ldp.Prefix(domain))
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := est.Answers(merged)
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := est.Variance(merged)
	if err != nil {
		t.Fatal(err)
	}

	resp, err = hs.Client().Post(hs.URL+"/query", "application/octet-stream", bytes.NewReader(reqBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d, want 200", resp.StatusCode)
	}
	if cov := resp.Header.Get("Ldp-Fleet-Coverage"); cov == "" {
		t.Error("query response carries no Ldp-Fleet-Coverage header")
	}
	if got := resp.Header.Get("Ldp-Fleet-Shards-Merged"); got != "3" {
		t.Errorf("Ldp-Fleet-Shards-Merged = %q, want 3", got)
	}
	next := 0
	info, err := transport.DecodeQueryResult(resp.Body, func(row transport.QueryRow) bool {
		if math.Float64bits(row.Answer) != math.Float64bits(wantA[row.Index]) {
			t.Fatalf("row %d answer: routed %v, local merge %v", row.Index, row.Answer, wantA[row.Index])
		}
		if math.Float64bits(row.Variance) != math.Float64bits(wantV[row.Index]) {
			t.Fatalf("row %d variance: routed %v, local merge %v", row.Index, row.Variance, wantV[row.Index])
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != domain || info.TotalRows != domain {
		t.Fatalf("streamed %d rows, want %d", next, domain)
	}
	if info.Count != float64(total) {
		t.Fatalf("result count %v, want %d (merged fleet total)", info.Count, total)
	}
}
