package ldp

import (
	"fmt"
	"math"
)

// Windowed estimation: every read-path method works on any Snapshot, and
// Snapshot.Diff of two snapshots from the same timeline IS a snapshot of the
// reports that arrived between them (accumulators are integer-valued sums, so
// the subtraction is exact). The helpers here just package the idiom — diff,
// then estimate — and the trend detector runs it across a retained epoch
// ladder.

// WindowEstimate returns the unbiased data-vector estimate for the reports
// that arrived in the window (older, newer]: newer.Diff(older) reconstructed
// exactly as DataEstimate would for a collector that absorbed only those
// reports. Both snapshots must come from the same timeline (one collector or
// one fleet merge set) — the Diff refuses mismatched identities and epoch
// inversion.
func (e *Estimator) WindowEstimate(newer, older Snapshot) ([]float64, error) {
	d, err := newer.Diff(older)
	if err != nil {
		return nil, err
	}
	return e.DataEstimate(d)
}

// WindowAnswers returns the unbiased workload answers W·x̂ for the reports
// that arrived in the window (older, newer].
func (e *Estimator) WindowAnswers(newer, older Snapshot) ([]float64, error) {
	d, err := newer.Diff(older)
	if err != nil {
		return nil, err
	}
	return e.Answers(d)
}

// WindowStat describes one window (From, To] of a trend scan: its epoch
// bounds, the report count that arrived in it, and the clamped, normalized
// frequency profile of those reports (zero when the window is empty).
type WindowStat struct {
	FromEpoch, ToEpoch uint64
	Count              float64
	Freq               []float64
}

// TrendPoint compares two consecutive windows of a trend scan: the previous
// window (From, Mid] against the current one (Mid, To].
type TrendPoint struct {
	// From, Mid, To are the epochs bounding the two windows.
	From, Mid, To uint64
	// PrevCount and CurCount are the windows' report counts.
	PrevCount, CurCount float64
	// Rate is the per-cell rate of change of the frequency profile per epoch:
	// (freqCur[i] − freqPrev[i]) / (To − Mid).
	Rate []float64
	// LInf is the L∞ drift between the two profiles, max_i |p_i − q_i|;
	// TV is the total-variation drift, ½·Σ_i |p_i − q_i|. Both are 0 for
	// identical distributions and 1 for disjoint ones.
	LInf, TV float64
}

// Trend is the detector's output over a retained epoch ladder.
type Trend struct {
	// Windows are the consecutive-snapshot windows, oldest first.
	Windows []WindowStat
	// Points compare consecutive windows (len(Windows)−1 entries).
	Points []TrendPoint
	// MaxTV is the largest total-variation drift across Points — the one-number
	// "did the distribution move" score an alert thresholds on.
	MaxTV float64
}

// windowFreq reduces one window snapshot to a frequency profile: the unbiased
// data estimate, clamped non-negative and normalized to sum 1. Noise makes
// individual cells of a small window swing negative; clamping before
// normalizing keeps the profile a distribution so the L∞/TV drift scores mean
// what they say.
func (e *Estimator) windowFreq(d Snapshot) ([]float64, error) {
	x, err := e.DataEstimate(d)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for i, v := range x {
		if v < 0 || math.IsNaN(v) {
			x[i] = 0
			continue
		}
		total += v
	}
	if total > 0 {
		for i := range x {
			x[i] /= total
		}
	}
	return x, nil
}

// Trend runs the drift detector over a ladder of snapshots from one timeline,
// epoch-ascending — typically the retained history (Collector.SnapAt over
// RetainedEpochs, or Fleet.SnapAt over a chosen grid) with the live Snap as
// the final rung. Consecutive rungs become windows, each window is reduced to
// a frequency profile, and consecutive windows are compared: the per-cell
// rate of change says which cells are moving, the L∞/TV scores say how much
// the distribution as a whole moved. Rungs that add no epochs or no reports
// are skipped (an empty window has no distribution to compare). At least two
// windows — three effective rungs — are needed for one TrendPoint.
func (e *Estimator) Trend(ladder []Snapshot) (Trend, error) {
	var tr Trend
	if len(ladder) < 2 {
		return tr, fmt.Errorf("ldp: trend needs at least 2 snapshots, got %d", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Epoch() < ladder[i-1].Epoch() {
			return tr, fmt.Errorf("ldp: trend ladder out of order at %d: epoch %d after %d", i, ladder[i].Epoch(), ladder[i-1].Epoch())
		}
	}
	prev := ladder[0]
	for _, s := range ladder[1:] {
		if s.Epoch() == prev.Epoch() {
			continue // no epochs advanced: zero-width rung
		}
		d, err := s.Diff(prev)
		if err != nil {
			return Trend{}, err
		}
		if d.Count() <= 0 {
			prev = s // empty window: skip it, the next window starts here
			continue
		}
		freq, err := e.windowFreq(d)
		if err != nil {
			return Trend{}, err
		}
		tr.Windows = append(tr.Windows, WindowStat{
			FromEpoch: prev.Epoch(), ToEpoch: s.Epoch(), Count: d.Count(), Freq: freq,
		})
		prev = s
	}
	for i := 1; i < len(tr.Windows); i++ {
		p, c := tr.Windows[i-1], tr.Windows[i]
		dEpoch := float64(c.ToEpoch - c.FromEpoch)
		pt := TrendPoint{
			From: p.FromEpoch, Mid: c.FromEpoch, To: c.ToEpoch,
			PrevCount: p.Count, CurCount: c.Count,
			Rate: make([]float64, len(c.Freq)),
		}
		for j := range c.Freq {
			diff := c.Freq[j] - p.Freq[j]
			pt.Rate[j] = diff / dEpoch
			if a := math.Abs(diff); a > pt.LInf {
				pt.LInf = a
			}
			pt.TV += math.Abs(diff)
		}
		pt.TV /= 2
		if pt.TV > tr.MaxTV {
			tr.MaxTV = pt.TV
		}
		tr.Points = append(tr.Points, pt)
	}
	return tr, nil
}
