// Package ldp is a workload-adaptive library for answering linear counting
// queries under local differential privacy (LDP).
//
// It implements the workload factorization mechanism of McKenna, Maity,
// Mazumdar and Miklau, "A workload-adaptive mechanism for linear queries
// under local differential privacy" (VLDB 2020, arXiv:2002.01582): given a
// workload of linear queries and a privacy budget ε, Optimize searches an
// expressive class of unbiased ε-LDP mechanisms for one that minimizes the
// expected total squared error on exactly those queries. The library also
// ships every baseline mechanism from the paper's evaluation, the standard
// workload families, error lower bounds, consistency post-processing, and an
// end-to-end client/server protocol implementation.
//
// # Quick start
//
// Every mechanism — optimized strategy matrices and the frequency oracles
// (OUE, OLH, RAPPOR) alike — speaks one streaming protocol: a Randomizer
// encodes a user's type into a Report on the client, an Aggregator absorbs
// reports on the collector.
//
//	w := ldp.Prefix(256)                          // the queries you care about
//	mech, err := ldp.Optimize(ctx, w, 1.0)        // ε = 1 mechanism tuned to them
//	...
//	rz, _ := ldp.NewRandomizer(mech.Strategy())
//	client, _ := ldp.NewClient(rz)
//	rep, _ := client.Randomize(userType, rng)     // each user runs this locally
//	...
//	agg, _ := ldp.NewAggregator(mech.Strategy())
//	col, _ := ldp.NewCollector(agg, w, 0)         // sharded, goroutine-safe
//	col.Ingest(rep)                               // from any handler goroutine
//	...
//	est, _ := ldp.NewEstimator(agg, w)            // the one read path
//	snap := col.Snap()                            // immutable, mergeable view
//	answers, _ := est.Answers(snap)               // unbiased workload estimates
//
// A FrequencyOracle is its own Randomizer and Aggregator, so the same
// pipeline runs with `ldp.NewOUE(n, eps)` in place of the two strategy
// adapters. Snapshots from several collectors (local or remote ldpserve
// shards) merge with Snapshot.Merge into one answerable view — see
// cmd/ldpfed. See README.md for the full tour and the migration table from
// the pre-streaming API.
//
// All heavy computation is expressed against the workload's Gram matrix WᵀW,
// so workloads with millions of rows (e.g. AllRange) remain cheap.
package ldp

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/lowerbound"
	"repro/internal/mechanism"
	"repro/internal/strategy"
	"repro/internal/workload"
)

// Workload is a set of linear counting queries over a discrete domain; see
// the constructors Histogram, Prefix, AllRange, AllMarginals, KWayMarginals,
// Parity, WidthRange, NewWorkload and Stacked.
type Workload = workload.Workload

// Mechanism is an ε-LDP mechanism that can be evaluated on workloads.
type Mechanism = mechanism.Mechanism

// Strategy is an ε-LDP strategy matrix (the conditional distribution each
// user's randomizer follows).
type Strategy = strategy.Strategy

// VarianceProfile holds per-user-type variances of a mechanism on a workload;
// it exposes worst-case/average variance and sample complexity.
type VarianceProfile = strategy.VarianceProfile

// Histogram returns the identity workload (all point queries) on n types.
func Histogram(n int) Workload { return workload.NewHistogram(n) }

// Prefix returns the workload of all prefix ranges (the empirical CDF).
func Prefix(n int) Workload { return workload.NewPrefix(n) }

// AllRange returns the workload of all n(n+1)/2 contiguous range queries.
func AllRange(n int) Workload { return workload.NewAllRange(n) }

// AllMarginals returns all marginal queries over the binary domain {0,1}^d.
func AllMarginals(d int) Workload { return workload.NewAllMarginals(d) }

// KWayMarginals returns all k-attribute marginal queries over {0,1}^d.
func KWayMarginals(d, k int) Workload { return workload.NewKWayMarginals(d, k) }

// Parity returns all parity (character) queries over {0,1}^d.
func Parity(d int) Workload { return workload.NewParity(d) }

// WidthRange returns all width-w sliding-window range queries on n types.
func WidthRange(n, w int) Workload { return workload.NewWidthRange(n, w) }

// Product returns the Kronecker product workload a ⊗ b over the flattened
// product domain (u = u_a·n_b + u_b): every combination of a query from a
// with a query from b. Multi-dimensional workloads — e.g. 2-D range queries
// as Product(AllRange(r), AllRange(c)) — are expressed this way.
func Product(a, b Workload) Workload { return workload.NewProduct(a, b) }

// NewWorkload wraps an arbitrary query matrix (rows are queries) as a
// workload. The paper places no restrictions on W: duplicated or linearly
// dependent rows are fine and simply weight those queries more.
func NewWorkload(name string, rows [][]float64) (Workload, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ldp: workload needs at least one query")
	}
	n := len(rows[0])
	m := linalg.New(len(rows), n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("ldp: query %d has %d coefficients, want %d", i, len(r), n)
		}
		m.SetRow(i, r)
	}
	return workload.NewExplicit(name, m), nil
}

// Stacked concatenates workloads over the same domain with positive weights
// expressing relative importance.
func Stacked(name string, parts []Workload, weights []float64) Workload {
	return workload.NewStacked(name, parts, weights)
}

// WorkloadByName builds one of the paper's six evaluation workloads
// ("Histogram", "Prefix", "AllRange", "AllMarginals", "3-WayMarginals",
// "Parity") for a domain of size n.
func WorkloadByName(name string, n int) (Workload, error) { return workload.ByName(name, n) }

// PaperWorkloads lists the six evaluation workload names in the paper's
// order.
var PaperWorkloads = workload.PaperWorkloads

// OptimizeOptions is the pre-functional-options configuration struct.
//
// Deprecated: new code should pass OptimizeOption values (WithIterations,
// WithSeed, ...) to Optimize; this alias backs the deprecated wrappers only.
type OptimizeOptions = core.Options

// Optimized is the workload-adaptive mechanism produced by Optimize. It
// embeds Factorization (so it satisfies Mechanism) and carries the
// optimization diagnostics.
type Optimized struct {
	*mechanism.Factorization
	// Objective is the final value of L(Q) (Theorem 3.11).
	Objective float64
	// Iterations is the number of projected-gradient iterations run.
	Iterations int
	// History is the objective trajectory.
	History []float64
}

// Optimize runs the paper's strategy optimization (Algorithm 2) and returns
// the mechanism tailored to workload w at privacy budget eps. The zero option
// set uses the paper's defaults; see the With... options for iterations,
// seeding, priors (footnote 2), warm starts, and progress observation. The
// context is checked inside the projected-gradient loop (and the step-size
// pilot runs), so cancellation and deadlines take effect within one
// iteration.
func Optimize(ctx context.Context, w Workload, eps float64, opts ...OptimizeOption) (*Optimized, error) {
	var s optimizeSettings
	for _, opt := range opts {
		if opt != nil {
			opt(&s)
		}
	}
	// A context carried in by the deprecated OptimizeOptions.Ctx (through the
	// legacy wrappers) wins over the background context those wrappers pass.
	if ctx != nil && s.core.Ctx == nil {
		s.core.Ctx = ctx
	}

	var res *core.Result
	if s.warmStarts {
		ms, err := baselines.Competitors(w, eps)
		if err != nil {
			return nil, err
		}
		var candidates []*strategy.Strategy
		for _, m := range ms {
			if f, ok := m.(*mechanism.Factorization); ok {
				candidates = append(candidates, f.Strategy())
			}
		}
		res, err = core.OptimizeBest(w, eps, s.core, candidates...)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		res, err = core.Optimize(w, eps, s.core)
		if err != nil {
			return nil, err
		}
	}

	fac := mechanism.NewFactorization("Optimized", res.Strategy)
	if res.PriorWeights != nil {
		var err error
		fac, err = mechanism.NewFactorizationWithPrior("Optimized (prior)", res.Strategy, res.PriorWeights)
		if err != nil {
			return nil, err
		}
	}
	return &Optimized{
		Factorization: fac,
		Objective:     res.Objective,
		Iterations:    res.Iters,
		History:       res.History,
	}, nil
}

// OptimizeForPrior optimizes for a prior distribution over user types.
//
// Deprecated: use Optimize with WithPrior.
func OptimizeForPrior(w Workload, eps float64, prior []float64, opts *OptimizeOptions) (*Optimized, error) {
	return Optimize(context.Background(), w, eps, withLegacyOptions(opts), WithPrior(prior))
}

// OptimizeBest is Optimize hardened with baseline warm starts.
//
// Deprecated: use Optimize with WithWarmStarts.
func OptimizeBest(w Workload, eps float64, opts *OptimizeOptions) (*Optimized, error) {
	return Optimize(context.Background(), w, eps, withLegacyOptions(opts), WithWarmStarts())
}

// OptimizeStrategy is Optimize returning the raw strategy matrix, for callers
// that manage mechanisms themselves.
func OptimizeStrategy(ctx context.Context, w Workload, eps float64, opts ...OptimizeOption) (*Strategy, error) {
	m, err := Optimize(ctx, w, eps, opts...)
	if err != nil {
		return nil, err
	}
	return m.Strategy(), nil
}

// RandomizedResponse returns Warner's randomized response mechanism.
func RandomizedResponse(n int, eps float64) Mechanism {
	return baselines.RandomizedResponse(n, eps)
}

// HadamardResponse returns the Hadamard response mechanism of Acharya et al.
func HadamardResponse(n int, eps float64) Mechanism {
	return baselines.HadamardResponse(n, eps)
}

// Hierarchical returns the hierarchical range-query mechanism with the given
// branching factor (use 4 for the paper's configuration).
func Hierarchical(n int, eps float64, branch int) (Mechanism, error) {
	return baselines.Hierarchical(n, eps, branch)
}

// Fourier returns the Fourier marginal-release mechanism over {0,1}^d with
// parities of order ≤ maxOrder (0 = all orders).
func Fourier(d int, eps float64, maxOrder int) (Mechanism, error) {
	return baselines.Fourier(d, eps, maxOrder)
}

// SubsetSelection returns the subset-selection mechanism of Ye & Barg
// (d ≤ 0 picks the optimal subset size). Only available for small domains:
// the strategy has C(n, d) rows.
func SubsetSelection(n int, eps float64, d int) (Mechanism, error) {
	return baselines.SubsetSelection(n, eps, d)
}

// RAPPOR returns the basic one-hot RAPPOR mechanism. Only available for small
// domains: the strategy has 2^n rows.
func RAPPOR(n int, eps float64) (Mechanism, error) {
	return baselines.RAPPOR(n, eps)
}

// MatrixMechanismL1 returns the distributed Matrix Mechanism with Laplace
// noise, tailored to w.
func MatrixMechanismL1(w Workload, eps float64) (Mechanism, error) {
	return baselines.MatrixMechanismL1(w, eps)
}

// MatrixMechanismL2 returns the distributed Matrix Mechanism with Gaussian
// noise, tailored to w.
func MatrixMechanismL2(w Workload, eps float64) (Mechanism, error) {
	return baselines.MatrixMechanismL2(w, eps)
}

// Gaussian returns the one-hot Gaussian mechanism of Bassily.
func Gaussian(n int, eps float64) Mechanism { return baselines.Gaussian(n, eps) }

// Competitors returns the paper's competitor mechanisms for a workload
// (Figure 1's legend minus "Optimized").
func Competitors(w Workload, eps float64) ([]Mechanism, error) {
	return baselines.Competitors(w, eps)
}

// Evaluate computes the per-user-type variance profile of a mechanism on a
// workload.
func Evaluate(m Mechanism, w Workload) (*VarianceProfile, error) { return m.Profile(w) }

// SampleComplexity returns the number of users a mechanism needs to achieve
// normalized worst-case variance alpha on a workload (Corollary 5.4; the
// paper's evaluation metric with α = 0.01).
func SampleComplexity(m Mechanism, w Workload, alpha float64) (float64, error) {
	vp, err := m.Profile(w)
	if err != nil {
		return 0, err
	}
	return vp.SampleComplexity(alpha), nil
}

// LowerBoundObjective returns the SVD lower bound on the optimization
// objective achievable by any ε-LDP factorization mechanism (Theorem 5.6).
func LowerBoundObjective(w Workload, eps float64) (float64, error) {
	return lowerbound.Objective(w, eps)
}

// LowerBoundSampleComplexity returns the implied sample-complexity lower
// bound at normalized variance alpha (Corollary 5.7 + Corollary 5.4).
func LowerBoundSampleComplexity(w Workload, eps, alpha float64) (float64, error) {
	return lowerbound.SampleComplexity(w, eps, alpha)
}
