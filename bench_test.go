// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 6), plus ablation and micro benchmarks for the design
// choices called out in DESIGN.md §6.
//
// Figure benchmarks run the shared experiment harness at reduced scale and
// report the figure's headline quantity through b.ReportMetric, so
// `go test -bench=.` regenerates the paper's qualitative results. Paper-scale
// runs are available through cmd/ldpbench -full.
package ldp_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	ldp "repro"
	"repro/internal/benchfix"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func benchConfig() experiments.Config {
	return experiments.Config{Alpha: 0.01, Seed: 1, Iters: 80}
}

// BenchmarkFigure1Epsilon regenerates Figure 1 (sample complexity vs ε, six
// workloads, seven mechanisms) and reports the paper's headline metric: the
// improvement ratio of Optimized over the best competitor (paper: 1.0–14.6×).
func BenchmarkFigure1Epsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps, err := experiments.FigureEpsilon(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		sum := experiments.Improvements(sweeps)
		b.ReportMetric(sum.MaxRatio, "max-improvement-x")
		b.ReportMetric(sum.MinRatio, "min-improvement-x")
		b.ReportMetric(float64(sum.Losses), "losses")
	}
}

// BenchmarkFigure2Domain regenerates Figure 2 (sample complexity vs n at
// ε = 1) and reports the log-log slope of the Optimized curve on AllRange
// (paper: ≈ 0.5, vs ≈ 1.0 for non-adaptive mechanisms).
func BenchmarkFigure2Domain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps, err := experiments.FigureDomain(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, sw := range sweeps {
			if sw.Workload != "AllRange" {
				continue
			}
			for _, se := range sw.Series {
				slope := logLogSlope(sw.Points, se.Values)
				switch se.Mechanism {
				case "Optimized":
					b.ReportMetric(slope, "optimized-slope")
				case "Randomized Response":
					b.ReportMetric(slope, "rr-slope")
				}
			}
		}
	}
}

func logLogSlope(xs, ys []float64) float64 {
	// Least-squares slope in log-log space, ignoring non-finite points.
	var sx, sy, sxx, sxy, n float64
	for i := range xs {
		if math.IsInf(ys[i], 0) || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// BenchmarkFigure3aDatasets regenerates Figure 3a and reports the maximum
// deviation of the Optimized mechanism's data-dependent sample complexity
// from the worst case (paper: 1.009×).
func BenchmarkFigure3aDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FigureDatasets(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		worst := rows[len(rows)-1].Values["Optimized"]
		maxDev := 1.0
		for _, r := range rows[:len(rows)-1] {
			if dev := worst / r.Values["Optimized"]; dev > maxDev {
				maxDev = dev
			}
		}
		b.ReportMetric(maxDev, "max-worst/data-x")
	}
}

// BenchmarkFigure3bInit regenerates Figure 3b and reports the largest
// variance ratio to the best strategy found across initializations and m
// (paper: ≤ 1.21).
func BenchmarkFigure3bInit(b *testing.B) {
	cfg := benchConfig()
	cfg.Iters = 50
	for i := 0; i < b.N; i++ {
		pts, err := experiments.FigureInit(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, p := range pts {
			if p.Max > worst {
				worst = p.Max
			}
		}
		b.ReportMetric(worst, "max-ratio-to-best")
	}
}

// BenchmarkFigure3cIteration times one projected-gradient iteration
// (objective + gradient + projection at m = 4n) across domain sizes — the
// quantity Figure 3c plots. The paper reports O(n³) growth.
func BenchmarkFigure3cIteration(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := 4 * n
			eps := 1.0
			rng := rand.New(rand.NewSource(1))
			gram := workload.NewHistogram(n).Gram()
			z := linalg.Constant(m, (1+math.Exp(-eps))/(2*float64(m)))
			r := linalg.New(m, n)
			for i := range r.Data() {
				r.Data()[i] = rng.Float64()
			}
			proj, err := opt.ProjectMatrix(r, z, eps)
			if err != nil {
				b.Fatal(err)
			}
			q := proj.Q
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, grad, err := core.ObjectiveGrad(q, gram)
				if err != nil {
					b.Fatal(err)
				}
				cand := q.Clone()
				cand.AddScaled(-1e-6, grad)
				if _, err := opt.ProjectMatrix(cand, z, eps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4WNNLS regenerates Figure 4 and reports the range of WNNLS
// improvement factors across the six workloads (paper: 1.96–5.6×).
func BenchmarkFigure4WNNLS(b *testing.B) {
	cfg := benchConfig()
	cfg.Iters = 60
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FigureWNNLS(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := math.Inf(1), 0.0
		for _, r := range rows {
			if r.Improvement < lo {
				lo = r.Improvement
			}
			if r.Improvement > hi {
				hi = r.Improvement
			}
		}
		b.ReportMetric(lo, "min-improvement-x")
		b.ReportMetric(hi, "max-improvement-x")
	}
}

// BenchmarkTable1 builds the classical mechanisms as strategy matrices and
// validates their LDP constraints (the executable Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(8, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.LDPValid {
				b.Fatalf("%s invalid", r.Mechanism)
			}
		}
	}
}

// --- ablation benchmarks (DESIGN.md §6) -----------------------------------

// BenchmarkAblationRelaxation measures how tight the average-case relaxation
// (Theorem 5.1) is for optimized strategies: L_worst/L_avg per workload
// (the paper argues, and Example 3.7 shows, the two are often very close).
func BenchmarkAblationRelaxation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		worstRatio := 0.0
		for _, name := range workload.PaperWorkloads {
			w, err := workload.ByName(name, 16)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Optimize(w, 1.0, core.Options{Iters: 120, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			vp, err := res.Strategy.Variances(w.Gram(), w.Queries())
			if err != nil {
				b.Fatal(err)
			}
			if r := vp.Worst(1) / vp.Avg(1); r > worstRatio {
				worstRatio = r
			}
		}
		b.ReportMetric(worstRatio, "max-Lworst/Lavg")
	}
}

// BenchmarkAblationInit compares random initialization (the paper's choice)
// against warm-starting from randomized response, reporting final objectives.
func BenchmarkAblationInit(b *testing.B) {
	w := workload.NewPrefix(16)
	rrQ := rrStrategyBench(16, 1.0)
	for i := 0; i < b.N; i++ {
		random, err := core.Optimize(w, 1.0, core.Options{Iters: 150, Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		warm, err := core.Optimize(w, 1.0, core.Options{Iters: 150, Seed: 6, Init: rrQ})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(random.Objective, "random-init-objective")
		b.ReportMetric(warm.Objective, "rr-init-objective")
	}
}

// BenchmarkAblationStepSize compares the paper's two-step-size scheme
// (α = β/(n·e^ε) for z) against naive equal steps by measuring the final
// objective each reaches. The z step is taken through the same code path, so
// the comparison isolates the step-size coupling.
func BenchmarkAblationStepSize(b *testing.B) {
	w := workload.NewPrefix(16)
	for i := 0; i < b.N; i++ {
		// The production configuration (paper scheme).
		paper, err := core.Optimize(w, 1.0, core.Options{Iters: 150, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(paper.Objective, "paper-scheme-objective")
	}
}

// --- micro benchmarks -------------------------------------------------------

// BenchmarkOptimizeEndToEnd times complete strategy optimization. The
// allocation report is the headline number for the workspace refactor: the
// seed burned 135,571 allocs / 357 MB per n=64 call; the workspace-based
// loop allocates only at setup. The body is shared with
// `cmd/ldpbench -exp bench` via internal/benchfix.
func BenchmarkOptimizeEndToEnd(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), benchfix.Optimize(n))
	}
}

// BenchmarkObjectiveGrad times one objective + analytic gradient evaluation
// through the reusable workspace (the optimizer's per-iteration linear
// algebra). Steady state must report 0 allocs/op.
func BenchmarkObjectiveGrad(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), benchfix.ObjectiveGrad(n))
	}
}

// BenchmarkProjectMatrixInto times Algorithm 1 over a full strategy matrix
// through the reusable projection buffers. Steady state must report
// 0 allocs/op.
func BenchmarkProjectMatrixInto(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), benchfix.Projection(n))
	}
}

// BenchmarkParallelMatMul times the shared goroutine-parallel matmul kernel
// backing Mul/MulAtB/MulABt at the optimizer's shapes (it fans out above a
// flop threshold; at GOMAXPROCS=1 it reports the serial kernel).
func BenchmarkParallelMatMul(b *testing.B) {
	for _, sh := range [][2]int{{256, 64}, {1024, 256}} {
		b.Run(fmt.Sprintf("m=%d,n=%d", sh[0], sh[1]), benchfix.MulAtB(sh[0], sh[1]))
	}
}

// BenchmarkProjection times Algorithm 1 over a full strategy matrix.
func BenchmarkProjection(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := 4 * n
			rng := rand.New(rand.NewSource(3))
			z := linalg.Constant(m, (1+math.Exp(-1.0))/(2*float64(m)))
			r := linalg.New(m, n)
			for i := range r.Data() {
				r.Data()[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.ProjectMatrix(r, z, 1.0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVarianceProfile times the full variance-profile computation
// (reconstruction + per-user variances) used by every evaluation.
func BenchmarkVarianceProfile(b *testing.B) {
	n := 64
	w := workload.NewAllRange(n)
	rr := rrStrategyBench(n, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rr.Variances(w.Gram(), w.Queries()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientRandomize times the per-user randomizer (alias sampling
// through the streaming protocol's report path).
func BenchmarkClientRandomize(b *testing.B) {
	n := 256
	rz, err := ldp.NewRandomizer(rrStrategyBench(n, 1.0))
	if err != nil {
		b.Fatal(err)
	}
	client, err := ldp.NewClient(rz)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Randomize(i%n, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorIngest measures concurrent ingest throughput: the sharded
// collector against the single-mutex configuration (shards=1) it replaced, at
// 1, 4 and 8 ingesting goroutines. The headline claim: sharded ingest scales
// with goroutines where the single mutex serializes them. The body is shared
// with `cmd/ldpbench -exp bench` via internal/benchfix.
func BenchmarkCollectorIngest(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sharded-g=%d", g), benchfix.CollectorIngest(g, 0))
		b.Run(fmt.Sprintf("mutex-g=%d", g), benchfix.CollectorIngest(g, 1))
	}
}

// BenchmarkSnapshotCached measures the collector read path: a cache hit (no
// ingest since the last read — one copy, no shard locks) against a forced
// miss (one report ingested per read — the pre-cache full lock-all remerge of
// all 32 shards). The body is shared with `cmd/ldpbench -exp bench` via
// internal/benchfix.
func BenchmarkSnapshotCached(b *testing.B) {
	b.Run("hit", benchfix.SnapshotCached(true))
	b.Run("miss", benchfix.SnapshotCached(false))
}

// BenchmarkOLHAbsorb compares OLH's candidate-enumeration absorb (invert the
// report's hash, visit ~p/g field elements) against the classic all-types
// scan it replaced. Both produce identical accumulators. The body is shared
// with `cmd/ldpbench -exp bench` via internal/benchfix.
func BenchmarkOLHAbsorb(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("candidates/n=%d", n), benchfix.OLHAbsorb(true, n))
		b.Run(fmt.Sprintf("scan/n=%d", n), benchfix.OLHAbsorb(false, n))
	}
}

// BenchmarkWALAppend measures the durable ingest path: one batch per op
// through the in-memory collector ("memory"), the group-commit buffered
// write-ahead log ("buffered" — the production default, within 2× of memory
// at the transport's 4096-report default batch), and per-commit fsync
// ("fsync"). The body is shared with `cmd/ldpbench -exp bench` via
// internal/benchfix.
func BenchmarkWALAppend(b *testing.B) {
	for _, batch := range []int{64, 4096} {
		for _, mode := range []string{"memory", "buffered", "fsync"} {
			b.Run(fmt.Sprintf("batch%d-%s", batch, mode), benchfix.WALAppend(mode, batch))
		}
	}
}

// BenchmarkRecoverReplay measures crash recovery: per op, open a data
// directory holding 256 WAL records × 64 reports and rebuild the collector
// state by replay. The body is shared with `cmd/ldpbench -exp bench` via
// internal/benchfix.
func BenchmarkRecoverReplay(b *testing.B) {
	b.Run("records=256x64", benchfix.RecoverReplay())
}

// BenchmarkSnapAt measures the historical read path: serve the oldest
// retained epoch from the checkpoint ladder (file read + CRC + decode, no
// replay), raw and gzip. The body is shared with `cmd/ldpbench -exp bench`
// via internal/benchfix.
func BenchmarkSnapAt(b *testing.B) {
	b.Run("raw", benchfix.SnapAt(false))
	b.Run("gzip", benchfix.SnapAt(true))
}

// BenchmarkCheckpointStream measures the streaming checkpoint writer at
// n=4096 — the per-cut cost the checkpoint interval amortizes — raw and
// gzip. The body is shared with `cmd/ldpbench -exp bench` via
// internal/benchfix.
func BenchmarkCheckpointStream(b *testing.B) {
	b.Run("raw", benchfix.CheckpointStream(false))
	b.Run("gzip", benchfix.CheckpointStream(true))
}

// BenchmarkPoolAnswerBatch measures the query engine's shared-computation
// batch answering against the pool-less baseline: four workloads over one
// snapshot, shared = EstimatorPool.AnswerBatch (x̂ once, repeated W·B rows
// shared, estimators cached), naive = fresh estimator + separate reads per
// workload. The body is shared with `cmd/ldpbench -exp bench` via
// internal/benchfix.
func BenchmarkPoolAnswerBatch(b *testing.B) {
	b.Run("shared", benchfix.PoolAnswerBatch(true))
	b.Run("naive", benchfix.PoolAnswerBatch(false))
}

// BenchmarkMetricsHotPath pins the per-request cost of armed telemetry — a
// pre-resolved counter increment, a gauge set, and a histogram observation —
// at 0 allocs/op. The body is shared with `cmd/ldpbench -exp bench` via
// internal/benchfix and the benchgate enforces the allocation pin in CI.
func BenchmarkMetricsHotPath(b *testing.B) {
	benchfix.MetricsHotPath()(b)
}

// BenchmarkWNNLS times consistency post-processing on the AllRange workload
// through its implicit operators.
func BenchmarkWNNLS(b *testing.B) {
	n := 64
	w := workload.NewAllRange(n)
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(rng.Intn(50))
	}
	noisy := w.MatVec(x)
	for i := range noisy {
		noisy[i] += 20 * rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.NNLS(w, noisy, opt.NNLSOptions{MaxIters: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingularValues times the Gram-based singular-value computation
// that the lower bounds use.
func BenchmarkSingularValues(b *testing.B) {
	g := workload.NewPrefix(128).Gram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SingularValuesFromGram(g); err != nil {
			b.Fatal(err)
		}
	}
}

func rrStrategyBench(n int, eps float64) *strategy.Strategy {
	return benchfix.RRStrategy(n, eps)
}
