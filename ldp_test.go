package ldp_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	ldp "repro"
)

func TestWorkloadConstructors(t *testing.T) {
	cases := []struct {
		w       ldp.Workload
		n, p    int
		hasName string
	}{
		{ldp.Histogram(8), 8, 8, "Histogram"},
		{ldp.Prefix(8), 8, 8, "Prefix"},
		{ldp.AllRange(8), 8, 36, "AllRange"},
		{ldp.AllMarginals(3), 8, 27, "AllMarginals"},
		{ldp.KWayMarginals(4, 2), 16, 24, "2-WayMarginals"},
		{ldp.Parity(3), 8, 8, "Parity"},
		{ldp.WidthRange(8, 3), 8, 6, "Width3Range"},
	}
	for _, c := range cases {
		if c.w.Domain() != c.n || c.w.Queries() != c.p || c.w.Name() != c.hasName {
			t.Fatalf("%s: got (%d, %d, %q), want (%d, %d, %q)",
				c.hasName, c.w.Domain(), c.w.Queries(), c.w.Name(), c.n, c.p, c.hasName)
		}
	}
}

func TestNewWorkload(t *testing.T) {
	w, err := ldp.NewWorkload("custom", [][]float64{{1, 0, 1}, {0, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if w.Domain() != 3 || w.Queries() != 2 {
		t.Fatal("custom workload shape wrong")
	}
	if _, err := ldp.NewWorkload("bad", [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := ldp.NewWorkload("empty", nil); err == nil {
		t.Fatal("expected error for empty workload")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	w := ldp.Prefix(8)
	mech, err := ldp.Optimize(w, 1.0, &ldp.OptimizeOptions{Iters: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mech.Name() != "Optimized" {
		t.Fatalf("name = %q", mech.Name())
	}
	if mech.Objective <= 0 || mech.Iterations == 0 || len(mech.History) == 0 {
		t.Fatal("diagnostics missing")
	}
	sc, err := ldp.SampleComplexity(mech, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sc <= 0 || math.IsInf(sc, 0) {
		t.Fatalf("sample complexity = %v", sc)
	}
	// The lower bound must hold.
	lb, err := ldp.LowerBoundObjective(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if mech.Objective < lb*(1-1e-9) {
		t.Fatalf("objective %v below lower bound %v", mech.Objective, lb)
	}
}

func TestBaselineConstructorsViaFacade(t *testing.T) {
	n, eps := 8, 1.0
	w := ldp.Histogram(n)
	mechs := []ldp.Mechanism{
		ldp.RandomizedResponse(n, eps),
		ldp.HadamardResponse(n, eps),
		ldp.Gaussian(n, eps),
	}
	h, err := ldp.Hierarchical(n, eps, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ldp.Fourier(3, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ldp.SubsetSelection(n, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ldp.RAPPOR(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ldp.MatrixMechanismL1(w, eps)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ldp.MatrixMechanismL2(w, eps)
	if err != nil {
		t.Fatal(err)
	}
	mechs = append(mechs, h, f, ss, rp, l1, l2)
	for _, m := range mechs {
		vp, err := ldp.Evaluate(m, w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if vp.Worst(1) <= 0 {
			t.Fatalf("%s: non-positive variance", m.Name())
		}
	}
}

func TestClientServerProtocol(t *testing.T) {
	n := 6
	w := ldp.Prefix(n)
	mech, err := ldp.Optimize(w, 2.0, &ldp.OptimizeOptions{Iters: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	client, err := ldp.NewClient(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	if client.Domain() != n || client.Epsilon() != 2.0 {
		t.Fatal("client metadata wrong")
	}
	server, err := ldp.NewServer(mech.Strategy(), w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// 3000 users, types drawn from a fixed histogram.
	x := []float64{900, 600, 500, 400, 350, 250}
	truth := w.MatVec(x)
	for u, cnt := range x {
		for j := 0; j < int(cnt); j++ {
			if err := server.Add(client.Respond(u, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if server.Count() != 3000 {
		t.Fatalf("count = %v", server.Count())
	}
	answers := server.Answers()
	for i := range truth {
		if math.Abs(answers[i]-truth[i]) > 0.25*3000 {
			t.Fatalf("answer[%d] = %v, truth %v — far beyond plausible noise", i, answers[i], truth[i])
		}
	}
	consistent, err := server.ConsistentAnswers()
	if err != nil {
		t.Fatal(err)
	}
	// Consistency: answers derive from a non-negative x̂ with Σx̂ = N, so the
	// last prefix (total count) must equal N exactly.
	if math.Abs(consistent[n-1]-3000) > 1e-6 {
		t.Fatalf("consistent total = %v, want 3000", consistent[n-1])
	}
	// Out-of-range response rejected.
	if err := server.Add(99999); err == nil {
		t.Fatal("expected range error")
	}
}

func TestClientRefusesInvalidStrategy(t *testing.T) {
	// A strategy claiming more privacy than it provides must be rejected.
	w := ldp.Histogram(4)
	mech, err := ldp.Optimize(w, 3.0, &ldp.OptimizeOptions{Iters: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := mech.Strategy()
	s.Eps = 0.1 // lie about the guarantee
	if _, err := ldp.NewClient(s); err == nil {
		t.Fatal("client must refuse a strategy that violates its declared ε")
	}
}

func TestStrategySaveLoad(t *testing.T) {
	w := ldp.Histogram(5)
	mech, err := ldp.Optimize(w, 1.0, &ldp.OptimizeOptions{Iters: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ldp.SaveStrategy(&buf, mech.Strategy()); err != nil {
		t.Fatal(err)
	}
	loaded, err := ldp.LoadStrategy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Eps != 1.0 || loaded.Domain() != 5 || loaded.Outputs() != mech.Strategy().Outputs() {
		t.Fatal("round-trip lost metadata")
	}
	// Corrupt stream rejected.
	if _, err := ldp.LoadStrategy(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSimulateProtocolFacade(t *testing.T) {
	w := ldp.Histogram(4)
	mech, err := ldp.Optimize(w, 2.0, &ldp.OptimizeOptions{Iters: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{100, 200, 300, 400}
	est, err := ldp.SimulateProtocol(mech.Strategy(), w, x, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 4 {
		t.Fatal("estimate length wrong")
	}
	total := 0.0
	for _, v := range est {
		total += v
	}
	// Unbiased histogram estimates approximately preserve the total.
	if math.Abs(total-1000) > 300 {
		t.Fatalf("estimated total = %v, want ≈1000", total)
	}
}

func TestCompetitorsFacade(t *testing.T) {
	w := ldp.Prefix(8)
	ms, err := ldp.Competitors(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no competitors")
	}
	// The headline comparison at small scale: Optimized ≤ all competitors.
	mech, err := ldp.Optimize(w, 1.0, &ldp.OptimizeOptions{Iters: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	optSC, err := ldp.SampleComplexity(mech, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		sc, err := ldp.SampleComplexity(m, w, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if optSC > sc*1.05 {
			t.Fatalf("Optimized (%v) worse than %s (%v) on Prefix", optSC, m.Name(), sc)
		}
	}
}

func TestLowerBoundFacade(t *testing.T) {
	lb, err := ldp.LowerBoundSampleComplexity(ldp.Parity(3), 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("Parity lower bound = %v, want positive", lb)
	}
}

func TestFrequencyOracleFacade(t *testing.T) {
	n := 2048 // far beyond any explicit strategy matrix
	olh, err := ldp.NewOLH(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	x[7], x[100], x[2000] = 1000, 700, 500
	est, err := ldp.RunFrequencyOracle(olh, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The three heavy cells must stand far above the noise floor
	// (per-cell std here is ≈ √(2200·3.7) ≈ 90).
	for _, v := range []int{7, 100, 2000} {
		if est[v] < 200 {
			t.Fatalf("cell %d estimate %v too low", v, est[v])
		}
	}
	oue, err := ldp.NewOUE(64, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ldp.NewRAPPOROracle(64, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if oue.VariancePerUser() >= rp.VariancePerUser() {
		t.Fatal("OUE should beat RAPPOR in variance")
	}
}
