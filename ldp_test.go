package ldp_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	ldp "repro"
)

func TestWorkloadConstructors(t *testing.T) {
	cases := []struct {
		w       ldp.Workload
		n, p    int
		hasName string
	}{
		{ldp.Histogram(8), 8, 8, "Histogram"},
		{ldp.Prefix(8), 8, 8, "Prefix"},
		{ldp.AllRange(8), 8, 36, "AllRange"},
		{ldp.AllMarginals(3), 8, 27, "AllMarginals"},
		{ldp.KWayMarginals(4, 2), 16, 24, "2-WayMarginals"},
		{ldp.Parity(3), 8, 8, "Parity"},
		{ldp.WidthRange(8, 3), 8, 6, "Width3Range"},
	}
	for _, c := range cases {
		if c.w.Domain() != c.n || c.w.Queries() != c.p || c.w.Name() != c.hasName {
			t.Fatalf("%s: got (%d, %d, %q), want (%d, %d, %q)",
				c.hasName, c.w.Domain(), c.w.Queries(), c.w.Name(), c.n, c.p, c.hasName)
		}
	}
}

func TestNewWorkload(t *testing.T) {
	w, err := ldp.NewWorkload("custom", [][]float64{{1, 0, 1}, {0, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if w.Domain() != 3 || w.Queries() != 2 {
		t.Fatal("custom workload shape wrong")
	}
	if _, err := ldp.NewWorkload("bad", [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := ldp.NewWorkload("empty", nil); err == nil {
		t.Fatal("expected error for empty workload")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	w := ldp.Prefix(8)
	mech, err := ldp.Optimize(context.Background(), w, 1.0,
		ldp.WithIterations(80), ldp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if mech.Name() != "Optimized" {
		t.Fatalf("name = %q", mech.Name())
	}
	if mech.Objective <= 0 || mech.Iterations == 0 || len(mech.History) == 0 {
		t.Fatal("diagnostics missing")
	}
	sc, err := ldp.SampleComplexity(mech, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sc <= 0 || math.IsInf(sc, 0) {
		t.Fatalf("sample complexity = %v", sc)
	}
	// The lower bound must hold.
	lb, err := ldp.LowerBoundObjective(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if mech.Objective < lb*(1-1e-9) {
		t.Fatalf("objective %v below lower bound %v", mech.Objective, lb)
	}
}

// TestOptimizeCancellation exercises the context checked inside the
// projected-gradient loop: cancelling mid-run must abort promptly with the
// context's error, cancelling up-front must abort before any iteration.
func TestOptimizeCancellation(t *testing.T) {
	w := ldp.Prefix(8)
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	_, err := ldp.Optimize(ctx, w, 1.0,
		ldp.WithIterations(5000), ldp.WithSeed(2),
		ldp.WithProgress(func(iter int, obj float64) {
			seen++
			if iter == 3 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen == 0 || seen > 10 {
		t.Fatalf("observed %d iterations before cancellation took effect", seen)
	}

	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := ldp.Optimize(done, w, 1.0, ldp.WithIterations(100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v", err)
	}

	// The deprecated wrappers must honor a context carried in through the
	// legacy OptimizeOptions.Ctx field.
	legacy, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if _, err := ldp.OptimizeBest(w, 1.0, &ldp.OptimizeOptions{Iters: 50, Ctx: legacy}); !errors.Is(err, context.Canceled) {
		t.Fatalf("legacy Ctx ignored by wrapper: err = %v", err)
	}
}

// TestOptimizeProgress verifies the observer sees the monotone iteration
// stream the optimizer actually ran.
func TestOptimizeProgress(t *testing.T) {
	w := ldp.Histogram(6)
	var iters []int
	mech, err := ldp.Optimize(context.Background(), w, 1.0,
		ldp.WithIterations(30), ldp.WithSeed(3),
		ldp.WithProgress(func(iter int, obj float64) {
			if obj <= 0 {
				t.Errorf("iteration %d: non-positive objective %v", iter, obj)
			}
			iters = append(iters, iter)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("progress observer never called")
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] <= iters[i-1] {
			t.Fatalf("iteration stream not increasing: %v", iters)
		}
	}
	if mech.Iterations == 0 {
		t.Fatal("diagnostics missing")
	}
}

func TestBaselineConstructorsViaFacade(t *testing.T) {
	n, eps := 8, 1.0
	w := ldp.Histogram(n)
	mechs := []ldp.Mechanism{
		ldp.RandomizedResponse(n, eps),
		ldp.HadamardResponse(n, eps),
		ldp.Gaussian(n, eps),
	}
	h, err := ldp.Hierarchical(n, eps, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ldp.Fourier(3, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ldp.SubsetSelection(n, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ldp.RAPPOR(n, eps)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := ldp.MatrixMechanismL1(w, eps)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ldp.MatrixMechanismL2(w, eps)
	if err != nil {
		t.Fatal(err)
	}
	mechs = append(mechs, h, f, ss, rp, l1, l2)
	for _, m := range mechs {
		vp, err := ldp.Evaluate(m, w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if vp.Worst(1) <= 0 {
			t.Fatalf("%s: non-positive variance", m.Name())
		}
	}
}

func TestClientServerProtocol(t *testing.T) {
	n := 6
	w := ldp.Prefix(n)
	mech, err := ldp.Optimize(context.Background(), w, 2.0,
		ldp.WithIterations(60), ldp.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	client, err := ldp.NewClient(rz)
	if err != nil {
		t.Fatal(err)
	}
	if client.Domain() != n || client.Epsilon() != 2.0 {
		t.Fatal("client metadata wrong")
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	server, err := ldp.NewServer(agg, w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// 3000 users, types drawn from a fixed histogram.
	x := []float64{900, 600, 500, 400, 350, 250}
	truth := w.MatVec(x)
	for u, cnt := range x {
		for j := 0; j < int(cnt); j++ {
			rep, err := client.Randomize(u, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := server.Ingest(rep); err != nil {
				t.Fatal(err)
			}
		}
	}
	if server.Count() != 3000 {
		t.Fatalf("count = %v", server.Count())
	}
	answers := server.Answers()
	for i := range truth {
		if math.Abs(answers[i]-truth[i]) > 0.25*3000 {
			t.Fatalf("answer[%d] = %v, truth %v — far beyond plausible noise", i, answers[i], truth[i])
		}
	}
	consistent, err := server.ConsistentAnswers()
	if err != nil {
		t.Fatal(err)
	}
	// Consistency: answers derive from a non-negative x̂ with Σx̂ = N, so the
	// last prefix (total count) must equal N exactly.
	if math.Abs(consistent[n-1]-3000) > 1e-6 {
		t.Fatalf("consistent total = %v, want 3000", consistent[n-1])
	}
	// Out-of-range report rejected.
	if err := server.Ingest(ldp.Report{Index: 99999}); err == nil {
		t.Fatal("expected range error")
	}
	// Family confusion rejected: a unary report has no meaning here.
	if err := server.Ingest(ldp.Report{Bits: make([]bool, n)}); err == nil {
		t.Fatal("expected family error")
	}
}

// TestDeprecatedStrategyWrappers keeps the pre-streaming entry points
// working: NewStrategyClient/Respond and NewStrategyServer/Add must behave
// like the explicit pipeline.
func TestDeprecatedStrategyWrappers(t *testing.T) {
	n := 4
	w := ldp.Histogram(n)
	mech, err := ldp.Optimize(context.Background(), w, 2.0,
		ldp.WithIterations(30), ldp.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	client, err := ldp.NewStrategyClient(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	server, err := ldp.NewStrategyServer(mech.Strategy(), w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if err := server.Add(client.Respond(i%n, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if server.Count() != 100 {
		t.Fatalf("count = %v", server.Count())
	}
	if err := server.Add(99999); err == nil {
		t.Fatal("expected range error")
	}
	if got := len(server.ResponseVector()); got != mech.Strategy().Outputs() {
		t.Fatalf("response vector length %d", got)
	}
}

func TestClientRefusesInvalidStrategy(t *testing.T) {
	// A strategy claiming more privacy than it provides must be rejected.
	w := ldp.Histogram(4)
	mech, err := ldp.Optimize(context.Background(), w, 3.0,
		ldp.WithIterations(30), ldp.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	s := mech.Strategy()
	s.Eps = 0.1 // lie about the guarantee
	if _, err := ldp.NewRandomizer(s); err == nil {
		t.Fatal("randomizer must refuse a strategy that violates its declared ε")
	}
}

// TestValidationToleranceUnified is the regression test for the split
// tolerance bug (NewClient at 1e-7 vs LoadStrategy at 1e-6): any strategy
// that loads must be accepted by the randomizer, because both gates share
// EpsValidationTol.
func TestValidationToleranceUnified(t *testing.T) {
	w := ldp.Histogram(5)
	mech, err := ldp.Optimize(context.Background(), w, 1.0,
		ldp.WithIterations(40), ldp.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ldp.SaveStrategy(&buf, mech.Strategy()); err != nil {
		t.Fatal(err)
	}
	loaded, err := ldp.LoadStrategy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ldp.NewRandomizer(loaded); err != nil {
		t.Fatalf("loaded strategy refused by randomizer: %v", err)
	}
	// The shared constant is the loader's tolerance: a strategy that passes
	// validation at exactly EpsValidationTol must pass both gates.
	if err := loaded.Validate(ldp.EpsValidationTol); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateProtocolFacade(t *testing.T) {
	w := ldp.Histogram(4)
	mech, err := ldp.Optimize(context.Background(), w, 2.0,
		ldp.WithIterations(40), ldp.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	rz, err := ldp.NewRandomizer(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ldp.NewAggregator(mech.Strategy())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{100, 200, 300, 400}
	est, err := ldp.SimulateProtocol(rz, agg, w, x, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 4 {
		t.Fatal("estimate length wrong")
	}
	total := 0.0
	for _, v := range est {
		total += v
	}
	// Unbiased histogram estimates approximately preserve the total.
	if math.Abs(total-1000) > 300 {
		t.Fatalf("estimated total = %v, want ≈1000", total)
	}

	// The same simulator runs a frequency oracle — and answers a non-trivial
	// workload over its histogram estimate.
	oue, err := ldp.NewOUE(4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	oest, err := ldp.SimulateProtocol(oue, oue, ldp.Prefix(4), x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(oest) != 4 {
		t.Fatal("oracle estimate length wrong")
	}
	if math.Abs(oest[3]-1000) > 300 {
		t.Fatalf("oracle CDF total = %v, want ≈1000", oest[3])
	}
}

func TestCompetitorsFacade(t *testing.T) {
	w := ldp.Prefix(8)
	ms, err := ldp.Competitors(w, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no competitors")
	}
	// The headline comparison at small scale: Optimized ≤ all competitors.
	mech, err := ldp.Optimize(context.Background(), w, 1.0,
		ldp.WithIterations(300), ldp.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	optSC, err := ldp.SampleComplexity(mech, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		sc, err := ldp.SampleComplexity(m, w, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if optSC > sc*1.05 {
			t.Fatalf("Optimized (%v) worse than %s (%v) on Prefix", optSC, m.Name(), sc)
		}
	}
}

func TestLowerBoundFacade(t *testing.T) {
	lb, err := ldp.LowerBoundSampleComplexity(ldp.Parity(3), 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("Parity lower bound = %v, want positive", lb)
	}
}

func TestFrequencyOracleFacade(t *testing.T) {
	n := 2048 // far beyond any explicit strategy matrix
	olh, err := ldp.NewOLH(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	x[7], x[100], x[2000] = 1000, 700, 500
	est, err := ldp.SimulateProtocol(olh, olh, ldp.Histogram(n), x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The three heavy cells must stand far above the noise floor
	// (per-cell std here is ≈ √(2200·3.7) ≈ 90).
	for _, v := range []int{7, 100, 2000} {
		if est[v] < 200 {
			t.Fatalf("cell %d estimate %v too low", v, est[v])
		}
	}
	oue, err := ldp.NewOUE(64, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ldp.NewRAPPOROracle(64, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if oue.VariancePerUser() >= rp.VariancePerUser() {
		t.Fatal("OUE should beat RAPPOR in variance")
	}
}
